#pragma once

// The population-scale design-space exploration driver.
//
// Turns the estimator into a search service: each generation, the chosen
// strategy proposes candidate genomes, every genome expands into a
// (TIE spec, harness application) pair, the batch is evaluated — locally
// through service::BatchEstimator (worker pool + content-addressed
// EvalCache) or remotely through POST /v1/rank on an xtc-serve instance —
// and the scored generation is fed back into the strategy and merged into
// the running frontier. With a checkpoint directory the whole state is
// durable after every generation and a search can be killed and resumed
// bit-reproducibly (docs/dse.md).
//
// Dedup: re-visited candidates (beam survivors, genetic elites, converged
// mutations) expand to bit-identical inputs, so the EvalCache key matches
// and the ISS never re-runs — DseStats reports the realized hit rate.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dse/candidate.h"
#include "dse/checkpoint.h"
#include "dse/strategy.h"
#include "model/macro_model.h"
#include "service/batch_estimator.h"

namespace exten::dse {

/// Progress report after each completed generation.
struct GenerationSummary {
  std::uint64_t generation = 0;   ///< index of the generation just finished
  std::size_t proposed = 0;       ///< candidates evaluated this generation
  std::uint64_t evaluations = 0;  ///< cumulative (across resume segments)
  std::uint64_t budget = 0;
  double best_score = 0.0;        ///< frontier best after the merge
  std::string best_name;
  std::uint64_t cache_hits = 0;   ///< cumulative, this process segment
  std::uint64_t cache_misses = 0;
};

struct DseOptions {
  /// Search definition (checkpointed; fixed across resume).
  std::string strategy = "beam";
  std::uint64_t budget = 1000;  ///< total candidate evaluations
  std::uint64_t seed = 1;
  explore::Objective objective = explore::Objective::kEdp;
  std::size_t frontier_size = 16;
  GenomeOptions genome{};
  StrategyOptions search{};

  /// Execution environment (process-local; resume may change these).
  std::string checkpoint_dir;  ///< empty = no durability
  std::string remote_host;     ///< "host:port" -> POST /v1/rank; empty = local
  service::BatchOptions batch{};
  std::function<void(const GenerationSummary&)> on_generation;
};

struct DseStats {
  std::uint64_t generations = 0;  ///< completed in this process segment
  std::uint64_t evaluations = 0;  ///< submitted in this process segment
  std::uint64_t infeasible = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  double wall_seconds = 0.0;

  double hit_rate() const {
    const std::uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
  double candidates_per_second() const {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(evaluations) / wall_seconds;
  }
};

struct DseResult {
  /// Best frontier_size feasible candidates, ranked by (score, name).
  std::vector<ScoredGenome> frontier;
  std::uint64_t generation = 0;   ///< generations completed overall
  std::uint64_t evaluations = 0;  ///< evaluations submitted overall
  std::uint64_t infeasible = 0;   ///< infeasible candidates overall
  explore::Objective objective = explore::Objective::kEdp;
  std::string strategy;
  DseStats stats;  ///< this process segment only (timing, cache)
};

/// Runs a fresh search from `options`. With a checkpoint_dir, refuses to
/// overwrite an existing checkpoint (resume instead, or use a fresh dir).
DseResult run_dse(const model::EnergyMacroModel& model,
                  const DseOptions& options);

/// Resumes from options.checkpoint_dir: the search *definition* (strategy,
/// seed, objective, genome/search options, frontier size) is restored from
/// the checkpoint — the corresponding fields of `options` are ignored —
/// while the execution environment (threads, remote, callbacks) is taken
/// from `options`. `budget_override` > 0 replaces the checkpointed budget
/// (extending or shortening the search); 0 keeps it. A search already at
/// its budget returns immediately with the checkpointed frontier.
DseResult resume_dse(const model::EnergyMacroModel& model,
                     const DseOptions& options,
                     std::uint64_t budget_override = 0);

}  // namespace exten::dse
