#pragma once

// Genome -> evaluatable candidate.
//
// A candidate evaluation needs two sources: the TIE-lite spec (the genome
// expansion) and an application that exercises the candidate's custom
// instructions. The application is a *harness program* derived from the
// space's fixed harness_seed with fuzz::generate_program, compiled against
// the candidate's mnemonics — the structured-generation analogue of the
// paper's "rewrite the application per extension variant" step. Both
// sources are pure functions of (genome, GenomeOptions), so the
// content-addressed EvalCache key over (program image, TIE config,
// processor, model) dedups re-visited genomes exactly.
//
// The candidate name is derived from a content digest of the two sources:
// stable across runs and platforms, unique per distinct candidate, and
// usable as the deterministic ranking tie-breaker.

#include <string>

#include "dse/genome.h"
#include "service/batch_estimator.h"

namespace exten::dse {

/// The two expanded sources plus the content-derived name.
struct CandidateSources {
  std::string name;        ///< "g" + 16 hex digits of the content digest
  std::string tie_source;  ///< TIE-lite spec text
  std::string asm_source;  ///< harness assembly exercising the spec
  /// The spec compiled once during expansion; make_job reuses it instead
  /// of recompiling. Never null after expand_candidate.
  std::shared_ptr<const tie::TieConfiguration> tie;
};

/// Expands a genome into its sources (pure; throws exten::Error only on a
/// generator/compiler contract violation — generated specs always
/// compile).
CandidateSources expand_candidate(const Genome& genome,
                                  const GenomeOptions& options);

/// Compiles the sources into an estimation job (assembles the harness
/// against the spec's mnemonics). Throws exten::Error on any TIE or
/// assembly error.
service::BatchJob make_job(const CandidateSources& sources);

}  // namespace exten::dse
