#include "dse/genome.h"

#include <algorithm>

#include "util/error.h"

namespace exten::dse {

namespace {

std::string hex_u64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out = "0x";
  bool significant = false;
  for (int shift = 60; shift >= 0; shift -= 4) {
    const unsigned nibble = static_cast<unsigned>((v >> shift) & 0xf);
    if (nibble != 0) significant = true;
    if (significant || shift == 0) out.push_back(kDigits[nibble]);
  }
  return out;
}

std::uint64_t parse_hex_u64(const std::string& s) {
  EXTEN_CHECK(s.size() > 2 && s[0] == '0' && s[1] == 'x',
              "genome seed must be a 0x-prefixed hex string, got '", s, "'");
  std::uint64_t v = 0;
  EXTEN_CHECK(s.size() <= 2 + 16, "genome seed '", s, "' overflows u64");
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    unsigned nibble = 0;
    if (c >= '0' && c <= '9') nibble = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') nibble = static_cast<unsigned>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') nibble = static_cast<unsigned>(c - 'A') + 10;
    else throw Error("genome seed '", s, "': bad hex digit '", c, "'");
    v = (v << 4) | nibble;
  }
  return v;
}

}  // namespace

Genome random_genome(Rng& rng, const GenomeOptions& options) {
  Genome g;
  g.decl_seed = rng.next_u64();
  const unsigned count = 1 + static_cast<unsigned>(rng.next_below(
                                 std::max(1u, options.max_instructions)));
  g.instr_seeds.reserve(count);
  for (unsigned i = 0; i < count; ++i) g.instr_seeds.push_back(rng.next_u64());
  return g;
}

Genome mutate(const Genome& parent, Rng& rng, const GenomeOptions& options) {
  Genome child = parent;
  for (;;) {
    switch (rng.next_below(4)) {
      case 0: {  // replace one instruction gene
        const std::size_t i = static_cast<std::size_t>(
            rng.next_below(child.instr_seeds.size()));
        child.instr_seeds[i] = rng.next_u64();
        return child;
      }
      case 1: {  // add an instruction gene (when room)
        if (child.instr_seeds.size() >= options.max_instructions) break;
        const std::size_t at = static_cast<std::size_t>(
            rng.next_below(child.instr_seeds.size() + 1));
        child.instr_seeds.insert(
            child.instr_seeds.begin() + static_cast<std::ptrdiff_t>(at),
            rng.next_u64());
        return child;
      }
      case 2: {  // drop an instruction gene (when more than one)
        if (child.instr_seeds.size() <= 1) break;
        const std::size_t i = static_cast<std::size_t>(
            rng.next_below(child.instr_seeds.size()));
        child.instr_seeds.erase(child.instr_seeds.begin() +
                                static_cast<std::ptrdiff_t>(i));
        return child;
      }
      default:  // reroll the shared declarations, keep the instruction set
        child.decl_seed = rng.next_u64();
        return child;
    }
  }
}

Genome crossover(const Genome& a, const Genome& b, Rng& rng,
                 const GenomeOptions& options) {
  Genome child;
  child.decl_seed = rng.next_bool() ? a.decl_seed : b.decl_seed;
  // One-point splice: a prefix of one parent's genes + a suffix of the
  // other's. Cut points include the ends, so a child can also be a pure
  // prefix/suffix recombination.
  const std::size_t cut_a =
      static_cast<std::size_t>(rng.next_below(a.instr_seeds.size() + 1));
  const std::size_t cut_b =
      static_cast<std::size_t>(rng.next_below(b.instr_seeds.size() + 1));
  child.instr_seeds.assign(a.instr_seeds.begin(),
                           a.instr_seeds.begin() +
                               static_cast<std::ptrdiff_t>(cut_a));
  child.instr_seeds.insert(child.instr_seeds.end(),
                           b.instr_seeds.begin() +
                               static_cast<std::ptrdiff_t>(cut_b),
                           b.instr_seeds.end());
  if (child.instr_seeds.empty()) {
    // Both cuts degenerate: inherit the first gene of parent a.
    child.instr_seeds.push_back(a.instr_seeds.front());
  }
  if (child.instr_seeds.size() > options.max_instructions) {
    child.instr_seeds.resize(options.max_instructions);
  }
  return child;
}

std::string to_tie_source(const Genome& genome, const GenomeOptions& options) {
  EXTEN_CHECK(!genome.instr_seeds.empty(), "genome has no instruction genes");
  Rng decl_rng(genome.decl_seed);
  fuzz::TieDeclNames decls;
  std::string source = fuzz::generate_tie_decls(decl_rng, options.tie, &decls);
  for (std::size_t i = 0; i < genome.instr_seeds.size(); ++i) {
    Rng instr_rng(genome.instr_seeds[i]);
    source += fuzz::generate_tie_instruction(
        instr_rng, "fz" + std::to_string(i), decls, options.tie);
  }
  return source;
}

void write_genome_fields(JsonWriter& w, const Genome& genome) {
  w.field("decl_seed", std::string_view(hex_u64(genome.decl_seed)));
  w.array_field("instr_seeds");
  for (std::uint64_t seed : genome.instr_seeds) {
    w.element(std::string_view(hex_u64(seed)));
  }
  w.end_array();
}

Genome parse_genome(const JsonValue& v) {
  EXTEN_CHECK(v.is_object(), "genome must be a JSON object");
  Genome g;
  const JsonValue* decl = v.find("decl_seed");
  EXTEN_CHECK(decl != nullptr, "genome missing decl_seed");
  g.decl_seed = parse_hex_u64(decl->as_string());
  const JsonValue* seeds = v.find("instr_seeds");
  EXTEN_CHECK(seeds != nullptr, "genome missing instr_seeds");
  for (const JsonValue& seed : seeds->as_array()) {
    g.instr_seeds.push_back(parse_hex_u64(seed.as_string()));
  }
  EXTEN_CHECK(!g.instr_seeds.empty(), "genome has no instruction genes");
  return g;
}

}  // namespace exten::dse
