#pragma once

// Pluggable search strategies over the genome space.
//
// The driver (dse/driver.h) runs a generation loop: the strategy proposes
// up to `limit` genomes, the driver evaluates them (locally through
// service::BatchEstimator or remotely through POST /v1/rank), and the
// scored results are fed back through observe(). Strategies are
// deterministic state machines: every random draw comes from the
// per-generation Rng the driver passes in (derived as a pure function of
// the search seed and the generation index), and the full strategy state
// round-trips through JSON — together those two properties make a search
// bit-reproducible and resumable from any generation boundary.
//
// Re-submission is deliberate: beam re-proposes the surviving beam and
// genetic re-proposes its elites alongside the new offspring. The
// content-addressed EvalCache turns those into hits (microseconds), the
// union is ranked with fresh uniform scores, and the observed hit rate
// doubles as a liveness check that dedup is working.

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dse/genome.h"
#include "util/json.h"
#include "util/rng.h"

namespace exten::dse {

/// A genome with its evaluation. score is the objective value (lower is
/// better); +inf marks an infeasible candidate (its evaluation faulted).
struct ScoredGenome {
  Genome genome;
  std::string name;
  double score = std::numeric_limits<double>::infinity();
  double energy_pj = 0.0;
  std::uint64_t cycles = 0;
  double edp = 0.0;

  bool feasible() const { return score < std::numeric_limits<double>::infinity(); }
};

/// Deterministic ranking order: by score, name-tie-broken (the same
/// contract explore::rank_candidates follows).
bool better(const ScoredGenome& a, const ScoredGenome& b);

struct StrategyOptions {
  /// Candidates proposed (and evaluated) per generation.
  std::size_t population = 32;
  /// Beam search: survivors kept per generation.
  std::size_t beam_width = 8;
  /// Genetic: elites re-proposed verbatim per generation.
  std::size_t elites = 4;
  /// Genetic: probability an offspring is a crossover of two parents
  /// (otherwise a clone of one).
  double crossover_rate = 0.7;
  /// Genetic: probability an offspring is additionally point-mutated.
  double mutation_rate = 0.9;
  /// Genetic: tournament size for parent selection.
  unsigned tournament = 3;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string_view name() const = 0;

  /// Proposes up to `limit` genomes for the next generation. `rng` is the
  /// generation's derived stream; consuming it is the only allowed source
  /// of randomness.
  virtual std::vector<Genome> propose(Rng& rng, std::size_t limit,
                                      const GenomeOptions& genome_options) = 0;

  /// Feeds back the scored proposals of the generation just evaluated, in
  /// proposal order.
  virtual void observe(const std::vector<ScoredGenome>& scored) = 0;

  /// Checkpoint round-trip: save_state emits the strategy's private state
  /// as fields of an already-open JSON object; load_state restores from
  /// the parsed object.
  virtual void save_state(JsonWriter& w) const = 0;
  virtual void load_state(const JsonValue& v) = 0;

  /// Factory over the CLI names: "random", "beam", "genetic". Throws
  /// exten::Error on an unknown name.
  static std::unique_ptr<Strategy> create(std::string_view strategy_name,
                                          const StrategyOptions& options);
};

/// Shared (de)serialization of ScoredGenome lists for strategy state and
/// the driver's frontier.
void write_scored_genome_fields(JsonWriter& w, const ScoredGenome& s);
ScoredGenome parse_scored_genome(const JsonValue& v);

}  // namespace exten::dse
