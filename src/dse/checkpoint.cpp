#include "dse/checkpoint.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace exten::dse {

namespace {

constexpr int kCheckpointVersion = 1;

std::uint64_t u64_field(const JsonValue& v, std::string_view key) {
  const JsonValue* f = v.find(key);
  EXTEN_CHECK(f != nullptr, "checkpoint missing '", key, "'");
  return static_cast<std::uint64_t>(f->as_number());
}

double number_or(const JsonValue& v, std::string_view key, double fallback) {
  const JsonValue* f = v.find(key);
  return f == nullptr ? fallback : f->as_number();
}

}  // namespace

const char* objective_name(explore::Objective objective) {
  switch (objective) {
    case explore::Objective::kEnergy: return "energy";
    case explore::Objective::kDelay: return "delay";
    case explore::Objective::kEdp: return "edp";
  }
  return "edp";
}

explore::Objective parse_objective(std::string_view name) {
  if (name == "energy") return explore::Objective::kEnergy;
  if (name == "delay") return explore::Objective::kDelay;
  if (name == "edp") return explore::Objective::kEdp;
  throw Error("unknown objective '", name,
              "' (expected energy, delay or edp)");
}

std::string render_checkpoint(const CheckpointData& data,
                              const Strategy& strategy) {
  JsonWriter w;
  w.begin_object();
  w.field("version", kCheckpointVersion);
  w.field("strategy", std::string_view(data.strategy));
  w.field("seed", data.seed);
  w.field("objective", std::string_view(objective_name(data.objective)));
  w.field("budget", data.budget);
  w.field("frontier_size", static_cast<std::uint64_t>(data.frontier_size));

  w.object_field("genome_options");
  w.field("max_instructions",
          static_cast<std::uint64_t>(data.genome.max_instructions));
  w.field("harness_seed", data.genome.harness_seed);
  w.field("harness_blocks",
          static_cast<std::uint64_t>(data.genome.harness_blocks));
  w.object_field("tie");
  w.field("max_states", static_cast<std::uint64_t>(data.genome.tie.max_states));
  w.field("max_regfiles",
          static_cast<std::uint64_t>(data.genome.tie.max_regfiles));
  w.field("max_tables", static_cast<std::uint64_t>(data.genome.tie.max_tables));
  w.field("max_assignments",
          static_cast<std::uint64_t>(data.genome.tie.max_assignments));
  w.field("max_expr_depth",
          static_cast<std::uint64_t>(data.genome.tie.max_expr_depth));
  w.end_object();
  w.end_object();

  w.object_field("search_options");
  w.field("population", static_cast<std::uint64_t>(data.search.population));
  w.field("beam_width", static_cast<std::uint64_t>(data.search.beam_width));
  w.field("elites", static_cast<std::uint64_t>(data.search.elites));
  w.field("crossover_rate", data.search.crossover_rate);
  w.field("mutation_rate", data.search.mutation_rate);
  w.field("tournament", static_cast<std::uint64_t>(data.search.tournament));
  w.end_object();

  w.field("generation", data.generation);
  w.field("evaluations", data.evaluations);
  w.field("infeasible", data.infeasible);

  w.array_field("frontier");
  for (const ScoredGenome& s : data.frontier) {
    w.element_object();
    write_scored_genome_fields(w, s);
    w.end_object();
  }
  w.end_array();

  w.object_field("strategy_state");
  strategy.save_state(w);
  w.end_object();

  w.end_object();
  return w.str();
}

CheckpointData parse_checkpoint(const std::string& text) {
  const JsonValue v = JsonValue::parse(text);
  EXTEN_CHECK(v.is_object(), "checkpoint must be a JSON object");
  const std::uint64_t version = u64_field(v, "version");
  EXTEN_CHECK(version == kCheckpointVersion, "checkpoint version ", version,
              " is not supported (expected ", kCheckpointVersion, ")");

  CheckpointData data;
  data.strategy = v.string_or("strategy", "");
  EXTEN_CHECK(!data.strategy.empty(), "checkpoint missing strategy");
  data.seed = u64_field(v, "seed");
  data.objective = parse_objective(v.string_or("objective", "edp"));
  data.budget = u64_field(v, "budget");
  data.frontier_size =
      static_cast<std::size_t>(u64_field(v, "frontier_size"));

  const JsonValue* genome = v.find("genome_options");
  EXTEN_CHECK(genome != nullptr, "checkpoint missing genome_options");
  data.genome.max_instructions =
      static_cast<unsigned>(u64_field(*genome, "max_instructions"));
  data.genome.harness_seed = u64_field(*genome, "harness_seed");
  data.genome.harness_blocks =
      static_cast<unsigned>(u64_field(*genome, "harness_blocks"));
  const JsonValue* tie = genome->find("tie");
  EXTEN_CHECK(tie != nullptr, "checkpoint missing genome_options.tie");
  data.genome.tie.max_states =
      static_cast<unsigned>(u64_field(*tie, "max_states"));
  data.genome.tie.max_regfiles =
      static_cast<unsigned>(u64_field(*tie, "max_regfiles"));
  data.genome.tie.max_tables =
      static_cast<unsigned>(u64_field(*tie, "max_tables"));
  data.genome.tie.max_assignments =
      static_cast<unsigned>(u64_field(*tie, "max_assignments"));
  data.genome.tie.max_expr_depth =
      static_cast<unsigned>(u64_field(*tie, "max_expr_depth"));

  const JsonValue* search = v.find("search_options");
  EXTEN_CHECK(search != nullptr, "checkpoint missing search_options");
  data.search.population =
      static_cast<std::size_t>(u64_field(*search, "population"));
  data.search.beam_width =
      static_cast<std::size_t>(u64_field(*search, "beam_width"));
  data.search.elites = static_cast<std::size_t>(u64_field(*search, "elites"));
  data.search.crossover_rate = number_or(*search, "crossover_rate", 0.7);
  data.search.mutation_rate = number_or(*search, "mutation_rate", 0.9);
  data.search.tournament =
      static_cast<unsigned>(u64_field(*search, "tournament"));

  data.generation = u64_field(v, "generation");
  data.evaluations = u64_field(v, "evaluations");
  data.infeasible = u64_field(v, "infeasible");

  const JsonValue* frontier = v.find("frontier");
  EXTEN_CHECK(frontier != nullptr, "checkpoint missing frontier");
  for (const JsonValue& s : frontier->as_array()) {
    data.frontier.push_back(parse_scored_genome(s));
  }

  const JsonValue* state = v.find("strategy_state");
  EXTEN_CHECK(state != nullptr, "checkpoint missing strategy_state");
  data.strategy_state = *state;
  return data;
}

std::string render_frontier(std::uint64_t generation,
                            std::uint64_t evaluations,
                            const std::vector<ScoredGenome>& frontier) {
  JsonWriter w;
  w.begin_object();
  w.field("generation", generation);
  w.field("evaluations", evaluations);
  w.array_field("frontier");
  for (const ScoredGenome& s : frontier) {
    w.element_object();
    write_scored_genome_fields(w, s);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void ensure_directory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  EXTEN_CHECK(!ec, "cannot create checkpoint directory '", dir, "': ",
              ec.message());
  EXTEN_CHECK(std::filesystem::is_directory(dir), "checkpoint path '", dir,
              "' is not a directory");
}

std::string read_checkpoint_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXTEN_CHECK(file.good(), "cannot read '", path, "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

bool checkpoint_file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    EXTEN_CHECK(file.good(), "cannot write '", tmp, "'");
    file << content;
    file.flush();
    EXTEN_CHECK(file.good(), "write to '", tmp, "' failed");
  }
  EXTEN_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0, "cannot rename '",
              tmp, "' to '", path, "'");
}

void append_run_log(const std::string& path, const std::string& line) {
  std::ofstream file(path, std::ios::binary | std::ios::app);
  EXTEN_CHECK(file.good(), "cannot append to '", path, "'");
  file << line << "\n";
  file.flush();
  EXTEN_CHECK(file.good(), "append to '", path, "' failed");
}

}  // namespace exten::dse
