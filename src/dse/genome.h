#pragma once

// The DSE genome: a candidate instruction-set extension as an evolvable
// value.
//
// The paper ranks a handful of hand-written Reed-Solomon extension
// variants; population-scale exploration (ByoRISC-style, see PAPERS.md)
// needs the space itself to be *generated*. A Genome encodes one candidate
// extension set as
//
//   - decl_seed    — expands (via fuzz::generate_tie_decls) into the
//                    shared state/regfile/table declarations, and
//   - instr_seeds  — one gene per custom instruction; each expands (via
//                    fuzz::generate_tie_instruction) into one
//                    `instruction` block referencing those declarations.
//
// Expansion is a pure function of the genome: the same seeds produce the
// same TIE source on every platform (util/rng.h pins the draw sequences,
// tests/test_fuzz.cpp pins golden digests). That purity is what makes the
// whole search checkpointable — a genome is 9..N*8 bytes of seeds, not a
// blob of source text — and what makes the content-addressed EvalCache a
// perfect dedup: re-visiting a genome re-derives bit-identical inputs and
// hits.
//
// Variation operators work at the extension-set granularity, which is the
// granularity the search cares about:
//   point mutation — replace/add/drop ONE instruction gene, or reroll the
//                    shared declarations under the same instructions;
//   crossover      — splice the two parents' instruction gene lists
//                    (one-point) and inherit one parent's declarations.
// An instruction gene re-expanded under a different declaration context
// adapts to it (the generator picks among the declared names), so spliced
// children are always valid specs.

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/gen_tie.h"
#include "util/json.h"
#include "util/rng.h"

namespace exten::dse {

/// Bounds of the candidate space (fixed for a whole search; checkpointed).
struct GenomeOptions {
  /// Maximum instruction genes per genome (random genomes draw 1..max).
  unsigned max_instructions = 4;
  /// Expansion bounds for declarations and instruction bodies.
  /// (tie.max_instructions is unused here — the gene list decides.)
  fuzz::TieGenOptions tie{};
  /// Harness-application derivation (see candidate.h): the fixed seed and
  /// size of the generated program that exercises each candidate's
  /// instructions. Part of the space definition — changing it changes
  /// every objective value.
  std::uint64_t harness_seed = 0x9u;
  unsigned harness_blocks = 14;
};

/// One candidate extension set. Ordering operators compare the raw seeds
/// (used only for deterministic dedup/containers, not for search quality).
struct Genome {
  std::uint64_t decl_seed = 0;
  std::vector<std::uint64_t> instr_seeds;

  bool operator==(const Genome& other) const {
    return decl_seed == other.decl_seed && instr_seeds == other.instr_seeds;
  }
};

/// Uniform random genome within `options`.
Genome random_genome(Rng& rng, const GenomeOptions& options);

/// Point mutation: exactly one edit (replace / add / drop an instruction
/// gene, or reroll decl_seed). Never returns the parent unchanged.
Genome mutate(const Genome& parent, Rng& rng, const GenomeOptions& options);

/// One-point crossover of the instruction gene lists; decl_seed comes from
/// one parent (coin flip). The child respects options.max_instructions.
Genome crossover(const Genome& a, const Genome& b, Rng& rng,
                 const GenomeOptions& options);

/// Expands the genome into TIE-lite source (pure function of genome +
/// options; always compiles under tie::compile_tie_source).
std::string to_tie_source(const Genome& genome, const GenomeOptions& options);

/// JSON round-trip for checkpoints. Seeds are serialized as hex *strings*
/// ("0x..."): the JSON parser holds numbers as double, which cannot
/// represent every u64. write_genome_fields emits into an already-open
/// object; parse_genome accepts the same object.
void write_genome_fields(JsonWriter& w, const Genome& genome);
Genome parse_genome(const JsonValue& v);

}  // namespace exten::dse
