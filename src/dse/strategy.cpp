#include "dse/strategy.h"

#include <algorithm>

#include "util/error.h"

namespace exten::dse {

bool better(const ScoredGenome& a, const ScoredGenome& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.name < b.name;
}

void write_scored_genome_fields(JsonWriter& w, const ScoredGenome& s) {
  w.field("name", std::string_view(s.name));
  // +inf (infeasible) serializes as null; parse_scored_genome maps it back.
  w.field("score", s.score);
  w.field("energy_pj", s.energy_pj);
  w.field("cycles", s.cycles);
  w.field("edp", s.edp);
  w.object_field("genome");
  write_genome_fields(w, s.genome);
  w.end_object();
}

ScoredGenome parse_scored_genome(const JsonValue& v) {
  EXTEN_CHECK(v.is_object(), "scored genome must be a JSON object");
  ScoredGenome s;
  s.name = v.string_or("name", "");
  EXTEN_CHECK(!s.name.empty(), "scored genome missing name");
  const JsonValue* score = v.find("score");
  EXTEN_CHECK(score != nullptr, "scored genome missing score");
  if (!score->is_null()) s.score = score->as_number();
  if (const JsonValue* e = v.find("energy_pj")) s.energy_pj = e->as_number();
  if (const JsonValue* c = v.find("cycles")) {
    s.cycles = static_cast<std::uint64_t>(c->as_number());
  }
  if (const JsonValue* e = v.find("edp")) s.edp = e->as_number();
  const JsonValue* genome = v.find("genome");
  EXTEN_CHECK(genome != nullptr, "scored genome missing genome");
  s.genome = parse_genome(*genome);
  return s;
}

namespace {

/// Sorts best-first, drops duplicate names (keeping the better entry) and
/// truncates to `keep`.
std::vector<ScoredGenome> top_unique(std::vector<ScoredGenome> scored,
                                     std::size_t keep) {
  std::stable_sort(scored.begin(), scored.end(), better);
  std::vector<ScoredGenome> out;
  out.reserve(std::min(keep, scored.size()));
  for (ScoredGenome& s : scored) {
    if (out.size() >= keep) break;
    if (!out.empty() && out.back().name == s.name) continue;
    const bool seen = std::any_of(
        out.begin(), out.end(),
        [&](const ScoredGenome& o) { return o.name == s.name; });
    if (!seen) out.push_back(std::move(s));
  }
  return out;
}

void save_members(JsonWriter& w, const std::vector<ScoredGenome>& members) {
  w.array_field("members");
  for (const ScoredGenome& s : members) {
    w.element_object();
    write_scored_genome_fields(w, s);
    w.end_object();
  }
  w.end_array();
}

std::vector<ScoredGenome> load_members(const JsonValue& v) {
  const JsonValue* members = v.find("members");
  EXTEN_CHECK(members != nullptr, "strategy state missing members");
  std::vector<ScoredGenome> out;
  for (const JsonValue& m : members->as_array()) {
    out.push_back(parse_scored_genome(m));
  }
  return out;
}

class RandomStrategy final : public Strategy {
 public:
  std::string_view name() const override { return "random"; }

  std::vector<Genome> propose(Rng& rng, std::size_t limit,
                              const GenomeOptions& genome_options) override {
    std::vector<Genome> out;
    out.reserve(limit);
    for (std::size_t i = 0; i < limit; ++i) {
      out.push_back(random_genome(rng, genome_options));
    }
    return out;
  }

  void observe(const std::vector<ScoredGenome>&) override {}

  void save_state(JsonWriter&) const override {}
  void load_state(const JsonValue&) override {}
};

class BeamStrategy final : public Strategy {
 public:
  explicit BeamStrategy(const StrategyOptions& options) : options_(options) {}

  std::string_view name() const override { return "beam"; }

  std::vector<Genome> propose(Rng& rng, std::size_t limit,
                              const GenomeOptions& genome_options) override {
    std::vector<Genome> out;
    out.reserve(limit);
    if (beam_.empty()) {
      // Seeding generation: a random sweep.
      for (std::size_t i = 0; i < limit; ++i) {
        out.push_back(random_genome(rng, genome_options));
      }
      return out;
    }
    // Re-propose the surviving beam (EvalCache hits — free), then expand
    // each member round-robin with point mutations until the budget slice
    // is full.
    for (const ScoredGenome& s : beam_) {
      if (out.size() >= limit) break;
      out.push_back(s.genome);
    }
    std::size_t parent = 0;
    while (out.size() < limit) {
      out.push_back(
          mutate(beam_[parent % beam_.size()].genome, rng, genome_options));
      ++parent;
    }
    return out;
  }

  void observe(const std::vector<ScoredGenome>& scored) override {
    // The union of old beam and new scores is present in `scored` itself
    // (the beam was re-proposed), so survivors come from one ranking.
    std::vector<ScoredGenome> pool = scored;
    pool.insert(pool.end(), beam_.begin(), beam_.end());
    pool.erase(std::remove_if(
                   pool.begin(), pool.end(),
                   [](const ScoredGenome& s) { return !s.feasible(); }),
               pool.end());
    beam_ = top_unique(std::move(pool), options_.beam_width);
  }

  void save_state(JsonWriter& w) const override { save_members(w, beam_); }
  void load_state(const JsonValue& v) override { beam_ = load_members(v); }

 private:
  StrategyOptions options_;
  std::vector<ScoredGenome> beam_;  ///< sorted best-first, feasible only
};

class GeneticStrategy final : public Strategy {
 public:
  explicit GeneticStrategy(const StrategyOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "genetic"; }

  std::vector<Genome> propose(Rng& rng, std::size_t limit,
                              const GenomeOptions& genome_options) override {
    std::vector<Genome> out;
    out.reserve(limit);
    std::vector<const ScoredGenome*> feasible;
    for (const ScoredGenome& s : population_) {
      if (s.feasible()) feasible.push_back(&s);
    }
    if (feasible.empty()) {
      // Seeding generation (or a fully-infeasible population): random.
      for (std::size_t i = 0; i < limit; ++i) {
        out.push_back(random_genome(rng, genome_options));
      }
      return out;
    }
    // Elites ride along verbatim (cache hits), offspring fill the rest.
    for (std::size_t i = 0; i < options_.elites && i < feasible.size(); ++i) {
      if (out.size() >= limit) break;
      out.push_back(feasible[i]->genome);
    }
    while (out.size() < limit) {
      const Genome& a = tournament(rng, feasible)->genome;
      Genome child = rng.next_bool(options_.crossover_rate)
                         ? crossover(a, tournament(rng, feasible)->genome,
                                     rng, genome_options)
                         : a;
      if (rng.next_bool(options_.mutation_rate)) {
        child = mutate(child, rng, genome_options);
      }
      out.push_back(std::move(child));
    }
    return out;
  }

  void observe(const std::vector<ScoredGenome>& scored) override {
    // The new population is the generation just scored, best-first (the
    // elites are in there because propose() re-submitted them).
    population_ = top_unique(scored, options_.population);
  }

  void save_state(JsonWriter& w) const override {
    save_members(w, population_);
  }
  void load_state(const JsonValue& v) override {
    population_ = load_members(v);
  }

 private:
  /// Best of `tournament` uniform draws (with replacement).
  const ScoredGenome* tournament(
      Rng& rng, const std::vector<const ScoredGenome*>& feasible) const {
    const ScoredGenome* best = nullptr;
    const unsigned rounds = std::max(1u, options_.tournament);
    for (unsigned i = 0; i < rounds; ++i) {
      const ScoredGenome* pick =
          feasible[static_cast<std::size_t>(rng.next_below(feasible.size()))];
      if (best == nullptr || better(*pick, *best)) best = pick;
    }
    return best;
  }

  StrategyOptions options_;
  std::vector<ScoredGenome> population_;  ///< sorted best-first
};

}  // namespace

std::unique_ptr<Strategy> Strategy::create(std::string_view strategy_name,
                                           const StrategyOptions& options) {
  if (strategy_name == "random") return std::make_unique<RandomStrategy>();
  if (strategy_name == "beam") return std::make_unique<BeamStrategy>(options);
  if (strategy_name == "genetic") {
    return std::make_unique<GeneticStrategy>(options);
  }
  throw Error("unknown DSE strategy '", strategy_name,
              "' (expected random, beam or genetic)");
}

}  // namespace exten::dse
