#include "dse/driver.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <map>

#include "net/http_client.h"
#include "util/error.h"
#include "util/strings.h"

namespace exten::dse {

namespace {

double objective_score(explore::Objective objective, double energy_pj,
                       std::uint64_t cycles, double edp) {
  switch (objective) {
    case explore::Objective::kEnergy: return energy_pj;
    case explore::Objective::kDelay: return static_cast<double>(cycles);
    case explore::Objective::kEdp: return edp;
  }
  return edp;
}

/// EDP in uJ * Mcycles — the same unit explore::Evaluation reports.
double edp_of(double energy_pj, std::uint64_t cycles) {
  return energy_pj * 1e-6 * (static_cast<double>(cycles) * 1e-6);
}

/// Evaluation backend: scores one generation of expanded candidates.
class Evaluator {
 public:
  virtual ~Evaluator() = default;
  /// Returns one ScoredGenome per input, in input order; infeasible
  /// candidates (evaluation faulted) come back with score = +inf.
  virtual std::vector<ScoredGenome> evaluate(
      const std::vector<Genome>& genomes,
      const std::vector<CandidateSources>& sources,
      explore::Objective objective) = 0;
  /// Cumulative dedup counters for this process segment (zero when the
  /// backend cannot observe them, i.e. remote).
  virtual void cache_counters(std::uint64_t* hits,
                              std::uint64_t* misses) const = 0;
};

class LocalEvaluator final : public Evaluator {
 public:
  LocalEvaluator(const model::EnergyMacroModel& model,
                 const service::BatchOptions& options)
      : estimator_(model, options) {}

  std::vector<ScoredGenome> evaluate(
      const std::vector<Genome>& genomes,
      const std::vector<CandidateSources>& sources,
      explore::Objective objective) override {
    std::vector<service::BatchJob> jobs;
    jobs.reserve(sources.size());
    for (const CandidateSources& s : sources) jobs.push_back(make_job(s));
    const service::BatchResult batch = estimator_.estimate(jobs);

    std::vector<ScoredGenome> scored(genomes.size());
    for (std::size_t i = 0; i < genomes.size(); ++i) {
      ScoredGenome& s = scored[i];
      s.genome = genomes[i];
      s.name = sources[i].name;
      const service::JobResult& job = batch.results[i];
      if (!job.ok) continue;  // infeasible: score stays +inf
      s.energy_pj = job.estimate.energy_pj;
      s.cycles = job.estimate.stats.cycles;
      s.edp = edp_of(s.energy_pj, s.cycles);
      s.score = objective_score(objective, s.energy_pj, s.cycles, s.edp);
    }
    return scored;
  }

  void cache_counters(std::uint64_t* hits,
                      std::uint64_t* misses) const override {
    const service::CacheStats stats = estimator_.cache_stats();
    *hits = stats.hits;
    *misses = stats.misses;
  }

 private:
  service::BatchEstimator estimator_;
};

/// Streams each generation through POST /v1/rank on an xtc-serve
/// instance. Dedup then happens server-side (its EvalCache); the hit rate
/// is visible in the server's /metrics (xtc_cache_*), not here.
class RemoteEvaluator final : public Evaluator {
 public:
  explicit RemoteEvaluator(const std::string& host_port) {
    const std::size_t colon = host_port.rfind(':');
    EXTEN_CHECK(colon != std::string::npos && colon + 1 < host_port.size(),
                "--remote expects HOST:PORT, got '", host_port, "'");
    const std::string host = host_port.substr(0, colon);
    // from_chars rather than stoi: "80x" and "-1" must fail loudly, not
    // parse partially (stoi stops at the first non-digit).
    unsigned port = 0;
    const char* pbegin = host_port.data() + colon + 1;
    const char* pend = host_port.data() + host_port.size();
    const auto [pptr, pec] = std::from_chars(pbegin, pend, port);
    EXTEN_CHECK(pec == std::errc() && pptr == pend && port >= 1 &&
                    port <= 65'535,
                "--remote port must be an integer in [1, 65535], got '",
                host_port, "'");
    client_ = std::make_unique<net::HttpClient>(
        host, static_cast<std::uint16_t>(port));
  }

  std::vector<ScoredGenome> evaluate(
      const std::vector<Genome>& genomes,
      const std::vector<CandidateSources>& sources,
      explore::Objective objective) override {
    JsonWriter w;
    w.begin_object();
    w.field("objective", std::string_view(objective_name(objective)));
    w.array_field("candidates");
    for (const CandidateSources& s : sources) {
      w.element_object();
      w.field("name", std::string_view(s.name));
      w.field("asm", std::string_view(s.asm_source));
      w.field("tie", std::string_view(s.tie_source));
      w.end_object();
    }
    w.end_array();
    w.end_object();

    const auto response = client_->post("/v1/rank", w.str());
    EXTEN_CHECK(response.status == 200, "/v1/rank returned ", response.status,
                ": ", response.body);
    const JsonValue body = JsonValue::parse(response.body);
    const JsonValue* ranked = body.find("ranked");
    EXTEN_CHECK(ranked != nullptr, "/v1/rank response missing 'ranked'");

    std::map<std::string, const JsonValue*> by_name;
    for (const JsonValue& entry : ranked->as_array()) {
      by_name[entry.string_or("name", "")] = &entry;
    }

    std::vector<ScoredGenome> scored(genomes.size());
    for (std::size_t i = 0; i < genomes.size(); ++i) {
      ScoredGenome& s = scored[i];
      s.genome = genomes[i];
      s.name = sources[i].name;
      const auto it = by_name.find(s.name);
      EXTEN_CHECK(it != by_name.end(), "/v1/rank response missing candidate '",
                  s.name, "'");
      const JsonValue& entry = *it->second;
      const JsonValue* energy = entry.find("energy_pj");
      const JsonValue* cycles = entry.find("cycles");
      EXTEN_CHECK(energy != nullptr && cycles != nullptr,
                  "/v1/rank entry for '", s.name, "' missing energy/cycles");
      s.energy_pj = energy->as_number();
      s.cycles = static_cast<std::uint64_t>(cycles->as_number());
      s.edp = edp_of(s.energy_pj, s.cycles);
      s.score = objective_score(objective, s.energy_pj, s.cycles, s.edp);
    }
    return scored;
  }

  void cache_counters(std::uint64_t* hits,
                      std::uint64_t* misses) const override {
    *hits = 0;
    *misses = 0;
  }

 private:
  std::unique_ptr<net::HttpClient> client_;
};

std::unique_ptr<Evaluator> make_evaluator(const model::EnergyMacroModel& model,
                                          const DseOptions& options) {
  if (!options.remote_host.empty()) {
    return std::make_unique<RemoteEvaluator>(options.remote_host);
  }
  return std::make_unique<LocalEvaluator>(model, options.batch);
}

/// Merges a scored generation into the frontier: feasible entries only,
/// ranked by (score, name), truncated to `size`. Deterministic — no
/// insertion-order or scheduling dependence survives the sort.
std::vector<ScoredGenome> merge_frontier(std::vector<ScoredGenome> frontier,
                                         const std::vector<ScoredGenome>& gen,
                                         std::size_t size) {
  for (const ScoredGenome& s : gen) {
    if (s.feasible()) frontier.push_back(s);
  }
  std::stable_sort(frontier.begin(), frontier.end(), better);
  std::vector<ScoredGenome> out;
  out.reserve(std::min(size, frontier.size()));
  for (ScoredGenome& s : frontier) {
    if (out.size() >= size) break;
    if (!out.empty() && out.back().name == s.name) continue;
    out.push_back(std::move(s));
  }
  return out;
}

std::string generation_log_line(std::uint64_t generation,
                                std::uint64_t evaluations,
                                const std::vector<ScoredGenome>& scored,
                                const std::vector<ScoredGenome>& frontier) {
  JsonWriter w;
  w.begin_object();
  w.field("type", std::string_view("generation"));
  w.field("generation", generation);
  w.field("evaluations", evaluations);
  w.field("proposed", static_cast<std::uint64_t>(scored.size()));
  if (!frontier.empty()) {
    w.field("best", std::string_view(frontier.front().name));
    w.field("best_score", frontier.front().score);
  }
  w.array_field("scored");
  for (const ScoredGenome& s : scored) {
    w.element_object();
    w.field("name", std::string_view(s.name));
    w.field("score", s.score);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string start_log_line(const CheckpointData& data, bool resumed,
                           bool remote) {
  JsonWriter w;
  w.begin_object();
  w.field("type", std::string_view("start"));
  w.field("strategy", std::string_view(data.strategy));
  w.field("seed", data.seed);
  w.field("objective", std::string_view(objective_name(data.objective)));
  w.field("budget", data.budget);
  w.field("resumed", resumed);
  w.field("remote", remote);
  w.field("generation", data.generation);
  w.field("evaluations", data.evaluations);
  w.end_object();
  return w.str();
}

DseResult run_loop(const model::EnergyMacroModel& model,
                   const DseOptions& options, CheckpointData state,
                   std::unique_ptr<Strategy> strategy, bool resumed) {
  const auto start = std::chrono::steady_clock::now();
  std::unique_ptr<Evaluator> evaluator = make_evaluator(model, options);

  const bool durable = !options.checkpoint_dir.empty();
  const std::string log_path = options.checkpoint_dir + "/run.jsonl";
  const std::string checkpoint_path =
      options.checkpoint_dir + "/checkpoint.json";
  const std::string frontier_path = options.checkpoint_dir + "/frontier.json";
  if (durable) {
    ensure_directory(options.checkpoint_dir);
    append_run_log(log_path,
                   start_log_line(state, resumed,
                                  !options.remote_host.empty()));
  }

  DseStats stats;
  const std::uint64_t start_evaluations = state.evaluations;
  const std::uint64_t start_infeasible = state.infeasible;

  while (state.evaluations < state.budget) {
    const std::size_t limit = static_cast<std::size_t>(
        std::min<std::uint64_t>(state.search.population,
                                state.budget - state.evaluations));
    // The generation stream is a pure function of (seed, generation):
    // nothing about process history — cache contents, wall clock, resume
    // segmentation — can perturb the search trajectory.
    Rng generation_rng(Rng::derive_seed(state.seed, state.generation + 1));
    const std::vector<Genome> proposals =
        strategy->propose(generation_rng, limit, state.genome);
    EXTEN_CHECK(!proposals.empty(), "strategy proposed no candidates");

    std::vector<CandidateSources> sources;
    sources.reserve(proposals.size());
    for (const Genome& genome : proposals) {
      sources.push_back(expand_candidate(genome, state.genome));
    }

    std::vector<ScoredGenome> scored =
        evaluator->evaluate(proposals, sources, state.objective);
    strategy->observe(scored);

    state.frontier = merge_frontier(std::move(state.frontier), scored,
                                    state.frontier_size);
    state.generation += 1;
    state.evaluations += proposals.size();
    for (const ScoredGenome& s : scored) {
      if (!s.feasible()) state.infeasible += 1;
    }

    if (durable) {
      append_run_log(log_path,
                     generation_log_line(state.generation, state.evaluations,
                                         scored, state.frontier));
      write_file_atomic(checkpoint_path,
                        render_checkpoint(state, *strategy));
      write_file_atomic(frontier_path,
                        render_frontier(state.generation, state.evaluations,
                                        state.frontier));
    }

    if (options.on_generation) {
      GenerationSummary summary;
      summary.generation = state.generation;
      summary.proposed = proposals.size();
      summary.evaluations = state.evaluations;
      summary.budget = state.budget;
      if (!state.frontier.empty()) {
        summary.best_score = state.frontier.front().score;
        summary.best_name = state.frontier.front().name;
      }
      evaluator->cache_counters(&summary.cache_hits, &summary.cache_misses);
      options.on_generation(summary);
    }
  }

  stats.generations = state.generation;
  stats.evaluations = state.evaluations - start_evaluations;
  stats.infeasible = state.infeasible - start_infeasible;
  evaluator->cache_counters(&stats.cache_hits, &stats.cache_misses);
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  DseResult result;
  result.frontier = std::move(state.frontier);
  result.generation = state.generation;
  result.evaluations = state.evaluations;
  result.infeasible = state.infeasible;
  result.objective = state.objective;
  result.strategy = state.strategy;
  result.stats = stats;
  return result;
}

}  // namespace

DseResult run_dse(const model::EnergyMacroModel& model,
                  const DseOptions& options) {
  EXTEN_CHECK(options.budget > 0, "DSE budget must be positive");
  EXTEN_CHECK(options.search.population > 0,
              "DSE population must be positive");
  if (!options.checkpoint_dir.empty()) {
    EXTEN_CHECK(
        !checkpoint_file_exists(options.checkpoint_dir + "/checkpoint.json"),
        "checkpoint directory '", options.checkpoint_dir,
        "' already holds a search — pass --resume to continue it, or use "
        "a fresh directory");
  }

  CheckpointData state;
  state.strategy = options.strategy;
  state.seed = options.seed;
  state.objective = options.objective;
  state.budget = options.budget;
  state.frontier_size = options.frontier_size;
  state.genome = options.genome;
  state.search = options.search;

  std::unique_ptr<Strategy> strategy =
      Strategy::create(options.strategy, options.search);
  return run_loop(model, options, std::move(state), std::move(strategy),
                  /*resumed=*/false);
}

DseResult resume_dse(const model::EnergyMacroModel& model,
                     const DseOptions& options,
                     std::uint64_t budget_override) {
  EXTEN_CHECK(!options.checkpoint_dir.empty(),
              "--resume needs a checkpoint directory");
  const std::string checkpoint_path =
      options.checkpoint_dir + "/checkpoint.json";
  CheckpointData state =
      parse_checkpoint(read_checkpoint_file(checkpoint_path));
  if (budget_override > 0) state.budget = budget_override;

  std::unique_ptr<Strategy> strategy =
      Strategy::create(state.strategy, state.search);
  strategy->load_state(state.strategy_state);
  return run_loop(model, options, std::move(state), std::move(strategy),
                  /*resumed=*/true);
}

}  // namespace exten::dse
