#pragma once

// Dense double-precision matrix/vector types for the regression machinery.
//
// The macro-model fit (paper Eq. (5)) works with an N x 21 observation
// matrix, so this is deliberately a small, cache-friendly, row-major dense
// implementation — no sparse structure or expression templates needed.

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace exten::linalg {

class Matrix;

/// Dense column vector.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> values) : data_(values) {}

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  /// Euclidean norm.
  double norm() const;
  /// Dot product; sizes must match.
  double dot(const Vector& other) const;

  Vector operator+(const Vector& other) const;
  Vector operator-(const Vector& other) const;
  Vector operator*(double scalar) const;

 private:
  std::vector<double> data_;
};

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must have equal arity.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Copies row r into a Vector.
  Vector row(std::size_t r) const;
  /// Copies column c into a Vector.
  Vector col(std::size_t c) const;
  /// Overwrites row r from a Vector of matching arity.
  void set_row(std::size_t r, const Vector& values);

  Matrix transpose() const;
  Matrix operator*(const Matrix& other) const;
  Vector operator*(const Vector& v) const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max |a_ij - b_ij|; matrices must have equal shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the square system M x = b by Gaussian elimination with partial
/// pivoting. Throws exten::Error on singular (or numerically singular) M.
Vector solve_linear(Matrix m, Vector b);

}  // namespace exten::linalg
