#include "linalg/least_squares.h"

#include <cmath>
#include <limits>
#include <vector>

#include "util/error.h"

namespace exten::linalg {

namespace {
constexpr double kRankTolerance = 1e-10;
}  // namespace

QrDecomposition::QrDecomposition(const Matrix& a)
    : m_(a.rows()), n_(a.cols()), qr_(a), tau_(a.cols()) {
  EXTEN_CHECK(m_ >= n_, "QR needs rows >= cols, got ", m_, "x", n_);
  for (std::size_t k = 0; k < n_; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm = 0.0;
    for (std::size_t i = k; i < m_; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0.0 ? -norm : norm;
    const double v0 = qr_(k, k) - alpha;
    // v = (v0, a_{k+1,k}, ..., a_{m-1,k}); store v/v0 below the diagonal and
    // alpha (= R_kk) on the diagonal.
    tau_[k] = -v0 / alpha;  // tau = 2 / (v^T v) * v0^2 rearranged
    for (std::size_t i = k + 1; i < m_; ++i) qr_(i, k) /= v0;
    qr_(k, k) = alpha;
    // Apply H = I - tau * v v^T (with v normalized to v0 = 1) to the
    // trailing columns.
    for (std::size_t c = k + 1; c < n_; ++c) {
      double dot = qr_(k, c);
      for (std::size_t i = k + 1; i < m_; ++i) dot += qr_(i, k) * qr_(i, c);
      dot *= tau_[k];
      qr_(k, c) -= dot;
      for (std::size_t i = k + 1; i < m_; ++i) qr_(i, c) -= dot * qr_(i, k);
    }
  }
}

bool QrDecomposition::full_rank() const {
  double max_diag = 0.0;
  for (std::size_t k = 0; k < n_; ++k) {
    max_diag = std::fmax(max_diag, std::fabs(qr_(k, k)));
  }
  if (max_diag == 0.0) return false;
  for (std::size_t k = 0; k < n_; ++k) {
    if (std::fabs(qr_(k, k)) < kRankTolerance * max_diag) return false;
  }
  return true;
}

double QrDecomposition::condition_estimate() const {
  double max_diag = 0.0;
  double min_diag = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < n_; ++k) {
    const double d = std::fabs(qr_(k, k));
    max_diag = std::fmax(max_diag, d);
    min_diag = std::fmin(min_diag, d);
  }
  if (min_diag == 0.0) return std::numeric_limits<double>::infinity();
  return max_diag / min_diag;
}

Vector QrDecomposition::solve(const Vector& b) const {
  EXTEN_CHECK(b.size() == m_, "QR solve rhs size ", b.size(), " != ", m_);
  if (!full_rank()) {
    throw Error("QR solve: matrix is numerically rank-deficient (condition ",
                condition_estimate(), ")");
  }
  // y = Q^T b.
  Vector y = b;
  for (std::size_t k = 0; k < n_; ++k) {
    if (tau_[k] == 0.0) continue;
    double dot = y[k];
    for (std::size_t i = k + 1; i < m_; ++i) dot += qr_(i, k) * y[i];
    dot *= tau_[k];
    y[k] -= dot;
    for (std::size_t i = k + 1; i < m_; ++i) y[i] -= dot * qr_(i, k);
  }
  // Back-substitute R x = y[0..n-1].
  Vector x(n_);
  for (std::size_t ri = n_; ri-- > 0;) {
    double acc = y[ri];
    for (std::size_t c = ri + 1; c < n_; ++c) acc -= qr_(ri, c) * x[c];
    x[ri] = acc / qr_(ri, ri);
  }
  return x;
}

namespace {

/// Builds the ridge-augmented system [A; sqrt(lambda) I], [b; 0].
void ridge_augment(const Matrix& a, const Vector& b, double lambda,
                   Matrix* a_out, Vector* b_out) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  *a_out = Matrix(m + n, n);
  *b_out = Vector(m + n);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c) (*a_out)(r, c) = a(r, c);
    (*b_out)[r] = b[r];
  }
  const double s = std::sqrt(lambda);
  for (std::size_t k = 0; k < n; ++k) (*a_out)(m + k, k) = s;
}

/// Solves with columns in `pinned` forced to zero by dropping them.
Vector solve_with_pins(const Matrix& a, const Vector& b, double lambda,
                       const std::vector<bool>& pinned, double* condition) {
  std::vector<std::size_t> keep;
  for (std::size_t c = 0; c < a.cols(); ++c) {
    if (!pinned[c]) keep.push_back(c);
  }
  EXTEN_CHECK(!keep.empty(), "nonnegative fit pinned every coefficient");
  Matrix sub(a.rows(), keep.size());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t j = 0; j < keep.size(); ++j) sub(r, j) = a(r, keep[j]);
  }
  Matrix sys = sub;
  Vector rhs = b;
  if (lambda > 0.0) ridge_augment(sub, b, lambda, &sys, &rhs);
  QrDecomposition qr(sys);
  if (condition != nullptr) *condition = qr.condition_estimate();
  const Vector partial = qr.solve(rhs);
  Vector full(a.cols(), 0.0);
  for (std::size_t j = 0; j < keep.size(); ++j) full[keep[j]] = partial[j];
  return full;
}

}  // namespace

LeastSquaresFit solve_least_squares(const Matrix& a, const Vector& b,
                                    const LeastSquaresOptions& options) {
  EXTEN_CHECK(a.rows() == b.size(), "least squares: ", a.rows(),
              " rows vs rhs size ", b.size());
  EXTEN_CHECK(a.rows() >= a.cols() || options.ridge_lambda > 0.0,
              "least squares: underdetermined system ", a.rows(), "x",
              a.cols(), " needs ridge regularization");

  LeastSquaresFit fit;
  std::vector<bool> pinned(a.cols(), false);
  fit.coefficients =
      solve_with_pins(a, b, options.ridge_lambda, pinned, &fit.condition);

  if (options.nonnegative) {
    // Simple active-set iteration: pin the most negative coefficient and
    // re-fit until all free coefficients are non-negative. Terminates in at
    // most n iterations because pins only grow.
    for (std::size_t iter = 0; iter < a.cols(); ++iter) {
      std::size_t worst = a.cols();
      double worst_value = -1e-12;
      for (std::size_t c = 0; c < a.cols(); ++c) {
        if (!pinned[c] && fit.coefficients[c] < worst_value) {
          worst_value = fit.coefficients[c];
          worst = c;
        }
      }
      if (worst == a.cols()) break;
      pinned[worst] = true;
      fit.coefficients =
          solve_with_pins(a, b, options.ridge_lambda, pinned, &fit.condition);
    }
  }

  fit.residuals = b - a * fit.coefficients;
  double ss_res = fit.residuals.dot(fit.residuals);
  double mean = 0.0;
  for (double x : b) mean += x;
  mean /= static_cast<double>(b.size());
  double ss_tot = 0.0;
  for (double x : b) ss_tot += (x - mean) * (x - mean);
  fit.rmse = std::sqrt(ss_res / static_cast<double>(b.size()));
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

Vector pseudo_inverse_solve(const Matrix& a, const Vector& b) {
  EXTEN_CHECK(a.rows() >= a.cols(), "pseudo-inverse: underdetermined system ",
              a.rows(), "x", a.cols());
  const Matrix at = a.transpose();
  return solve_linear(at * a, at * b);
}

}  // namespace exten::linalg
