#include "linalg/matrix.h"

#include <cmath>

#include "util/error.h"

namespace exten::linalg {

double Vector::norm() const { return std::sqrt(dot(*this)); }

double Vector::dot(const Vector& other) const {
  EXTEN_CHECK(size() == other.size(), "dot: size mismatch ", size(), " vs ",
              other.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += data_[i] * other.data_[i];
  return acc;
}

Vector Vector::operator+(const Vector& other) const {
  EXTEN_CHECK(size() == other.size(), "vector add: size mismatch");
  Vector out(size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = data_[i] + other.data_[i];
  return out;
}

Vector Vector::operator-(const Vector& other) const {
  EXTEN_CHECK(size() == other.size(), "vector sub: size mismatch");
  Vector out(size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = data_[i] - other.data_[i];
  return out;
}

Vector Vector::operator*(double scalar) const {
  Vector out(size());
  for (std::size_t i = 0; i < size(); ++i) out[i] = data_[i] * scalar;
  return out;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    EXTEN_CHECK(row.size() == cols_, "ragged initializer: row arity ",
                row.size(), " != ", cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::row(std::size_t r) const {
  EXTEN_CHECK(r < rows_, "row ", r, " out of range (", rows_, ")");
  Vector out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Vector Matrix::col(std::size_t c) const {
  EXTEN_CHECK(c < cols_, "col ", c, " out of range (", cols_, ")");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_row(std::size_t r, const Vector& values) {
  EXTEN_CHECK(r < rows_, "row ", r, " out of range (", rows_, ")");
  EXTEN_CHECK(values.size() == cols_, "set_row arity ", values.size(),
              " != ", cols_);
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = values[c];
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  EXTEN_CHECK(cols_ == other.rows_, "matmul shape mismatch: ", rows_, "x",
              cols_, " * ", other.rows_, "x", other.cols_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  EXTEN_CHECK(cols_ == v.size(), "matvec shape mismatch: ", rows_, "x", cols_,
              " * ", v.size());
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  EXTEN_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "matrix add shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  EXTEN_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "matrix sub shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * scalar;
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return std::sqrt(acc);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  EXTEN_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_,
              "max_abs_diff shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    worst = std::fmax(worst, std::fabs(a.data_[i] - b.data_[i]));
  }
  return worst;
}

Vector solve_linear(Matrix m, Vector b) {
  EXTEN_CHECK(m.rows() == m.cols(), "solve_linear needs a square matrix, got ",
              m.rows(), "x", m.cols());
  EXTEN_CHECK(m.rows() == b.size(), "solve_linear rhs size mismatch");
  const std::size_t n = m.rows();

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    std::size_t pivot = k;
    double best = std::fabs(m(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::fabs(m(r, k)) > best) {
        best = std::fabs(m(r, k));
        pivot = r;
      }
    }
    if (best < 1e-12) {
      throw Error("solve_linear: matrix is singular at pivot ", k,
                  " (|pivot| = ", best, ")");
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(m(k, c), m(pivot, c));
      std::swap(b[k], b[pivot]);
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = m(r, k) / m(k, k);
      if (factor == 0.0) continue;
      for (std::size_t c = k; c < n; ++c) m(r, c) -= factor * m(k, c);
      b[r] -= factor * b[k];
    }
  }

  Vector x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= m(ri, c) * x[c];
    x[ri] = acc / m(ri, ri);
  }
  return x;
}

}  // namespace exten::linalg
