#pragma once

// Least-squares solvers for macro-model fitting.
//
// The paper (Eq. (5)) solves  c = (A^T A)^{-1} A^T e  — the pseudo-inverse /
// normal-equations form. We provide that exact path plus a Householder-QR
// path with better numerical behaviour; both are tested to agree on
// well-conditioned systems. Optional ridge regularization supports the
// regression-robustness ablation.

#include <cstddef>

#include "linalg/matrix.h"

namespace exten::linalg {

/// Options for solve_least_squares.
struct LeastSquaresOptions {
  /// Tikhonov/ridge penalty lambda (0 = ordinary least squares).
  double ridge_lambda = 0.0;
  /// If true, clamp fitted coefficients at >= 0. Energy coefficients are
  /// physically non-negative; the solver re-fits with offending columns
  /// pinned to zero (simple active-set iteration).
  bool nonnegative = false;
};

/// Result of a least-squares fit with diagnostics.
struct LeastSquaresFit {
  Vector coefficients;        ///< Fitted c (size = A.cols()).
  Vector residuals;           ///< e - A c (size = A.rows()).
  double rmse = 0.0;          ///< sqrt(mean squared residual).
  double r_squared = 0.0;     ///< Coefficient of determination.
  double condition = 0.0;     ///< max|R_ii| / min|R_ii| from QR (inf if rank-deficient).
};

/// Householder QR factorization of an m x n matrix (m >= n).
class QrDecomposition {
 public:
  /// Factorizes A = Q R. Throws exten::Error when m < n.
  explicit QrDecomposition(const Matrix& a);

  /// Minimum-residual solution of A x = b (least squares).
  /// Throws exten::Error when A is numerically rank-deficient.
  Vector solve(const Vector& b) const;

  /// Ratio of extreme |R_ii| magnitudes — a cheap condition estimate.
  double condition_estimate() const;

  /// True if all |R_ii| exceed the rank tolerance.
  bool full_rank() const;

 private:
  std::size_t m_ = 0;
  std::size_t n_ = 0;
  Matrix qr_;          ///< Packed Householder vectors + R.
  Vector tau_;         ///< Householder scalar factors.
};

/// Full-featured least-squares fit via QR with diagnostics.
/// Throws exten::Error if A has more columns than rows or is rank-deficient
/// (unless ridge_lambda > 0, which always regularizes to full rank).
LeastSquaresFit solve_least_squares(const Matrix& a, const Vector& b,
                                    const LeastSquaresOptions& options = {});

/// The paper's Eq. (5): c = (A^T A)^{-1} A^T e via the normal equations.
/// Kept as the literal reproduction of the paper's method.
Vector pseudo_inverse_solve(const Matrix& a, const Vector& b);

}  // namespace exten::linalg
