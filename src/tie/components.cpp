#include "tie/components.h"

#include <cmath>

#include "util/error.h"

namespace exten::tie {

namespace {
constexpr std::array<std::string_view, kComponentClassCount> kNames = {
    "mult", "adder", "logic", "shifter", "custreg",
    "tie_mult", "tie_mac", "tie_add", "tie_csa", "table"};
}  // namespace

std::string_view component_class_name(ComponentClass cls) {
  const auto index = static_cast<std::size_t>(cls);
  EXTEN_CHECK(index < kComponentClassCount, "bad component class ", index);
  return kNames[index];
}

std::optional<ComponentClass> find_component_class(std::string_view name) {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) return static_cast<ComponentClass>(i);
  }
  return std::nullopt;
}

bool is_quadratic(ComponentClass cls) {
  switch (cls) {
    case ComponentClass::kMultiplier:
    case ComponentClass::kTieMult:
    case ComponentClass::kTieMac:
      return true;
    default:
      return false;
  }
}

double complexity(ComponentClass cls, unsigned width, unsigned entries) {
  EXTEN_CHECK(width >= 1 && width <= kMaxComponentWidth,
              "component width ", width, " out of range 1..",
              kMaxComponentWidth);
  // Normalized so a "typical" 32-bit linear primitive (or an 8-bit-wide,
  // 256-entry table) has C = 1; the per-category unit energies then carry
  // the pJ magnitude, matching the paper's Table I convention.
  const double w = static_cast<double>(width) / 32.0;
  if (cls == ComponentClass::kTable) {
    EXTEN_CHECK(entries >= 2, "table needs >= 2 entries, got ", entries);
    return (static_cast<double>(width) / 8.0) *
           std::log2(static_cast<double>(entries)) / 8.0;
  }
  if (is_quadratic(cls)) return w * w;
  return w;
}

}  // namespace exten::tie
