#include <cctype>
#include <optional>
#include <set>

#include "tie/spec.h"
#include "util/error.h"
#include "util/strings.h"

namespace exten::tie {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind : std::uint8_t { kIdent, kNumber, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::uint64_t number = 0;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) { advance(); }

  const Token& peek() const { return current_; }

  Token next() {
    Token t = current_;
    advance();
    return t;
  }

  /// Consumes the current token if it is the given punctuation.
  bool accept_punct(std::string_view punct) {
    if (current_.kind == TokKind::kPunct && current_.text == punct) {
      advance();
      return true;
    }
    return false;
  }

  /// Consumes the current token if it is the given identifier.
  bool accept_ident(std::string_view ident) {
    if (current_.kind == TokKind::kIdent && current_.text == ident) {
      advance();
      return true;
    }
    return false;
  }

  void expect_punct(std::string_view punct) {
    if (!accept_punct(punct)) {
      throw Error("line ", current_.line, ": expected '", punct, "', got '",
                  current_.text, "'");
    }
  }

  std::string expect_ident(const char* what) {
    if (current_.kind != TokKind::kIdent) {
      throw Error("line ", current_.line, ": expected ", what, ", got '",
                  current_.text, "'");
    }
    return next().text;
  }

  std::uint64_t expect_number(const char* what) {
    bool negative = false;
    if (current_.kind == TokKind::kPunct && current_.text == "-") {
      negative = true;
      advance();
    }
    if (current_.kind != TokKind::kNumber) {
      throw Error("line ", current_.line, ": expected ", what, ", got '",
                  current_.text, "'");
    }
    const std::uint64_t v = next().number;
    return negative ? ~v + 1 : v;
  }

  int line() const { return current_.line; }

 private:
  void advance() {
    skip_ws_and_comments();
    current_.line = line_;
    if (pos_ >= source_.size()) {
      current_ = Token{TokKind::kEnd, "<end of input>", 0, line_};
      return;
    }
    const char c = source_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos_;
      while (pos_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[pos_])) ||
              source_[pos_] == '_')) {
        ++pos_;
      }
      current_ = Token{TokKind::kIdent,
                       std::string(source_.substr(start, pos_ - start)), 0,
                       line_};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = pos_;
      while (pos_ < source_.size() &&
             (std::isalnum(static_cast<unsigned char>(source_[pos_])))) {
        ++pos_;
      }
      const std::string text(source_.substr(start, pos_ - start));
      std::int64_t value = 0;
      if (!parse_int(text, &value)) {
        throw Error("line ", line_, ": bad number '", text, "'");
      }
      current_ = Token{TokKind::kNumber, text,
                       static_cast<std::uint64_t>(value), line_};
      return;
    }
    // Multi-character operators first.
    static constexpr std::string_view kTwoChar[] = {"<<", ">>", "==", "!=",
                                                    "<=", ">="};
    for (std::string_view op : kTwoChar) {
      if (source_.substr(pos_, 2) == op) {
        pos_ += 2;
        current_ = Token{TokKind::kPunct, std::string(op), 0, line_};
        return;
      }
    }
    ++pos_;
    current_ = Token{TokKind::kPunct, std::string(1, c), 0, line_};
  }

  void skip_ws_and_comments() {
    for (;;) {
      while (pos_ < source_.size() &&
             std::isspace(static_cast<unsigned char>(source_[pos_]))) {
        if (source_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ < source_.size() &&
          (source_[pos_] == '#' ||
           (source_[pos_] == '/' && pos_ + 1 < source_.size() &&
            source_[pos_ + 1] == '/'))) {
        while (pos_ < source_.size() && source_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

// ---------------------------------------------------------------------------
// Semantics expression parser (precedence climbing)
// ---------------------------------------------------------------------------

/// Declared symbol kinds visible to the semantics parser.
struct SymbolKinds {
  std::set<std::string> states;
  std::set<std::string> regfiles;
  std::set<std::string> tables;
};

class SemanticsParser {
 public:
  SemanticsParser(Lexer& lex, const SymbolKinds& symbols)
      : lex_(lex), symbols_(symbols) {}

  /// Parses `{ stmt* }`.
  std::vector<Assignment> parse_body() {
    lex_.expect_punct("{");
    std::vector<Assignment> body;
    while (!lex_.accept_punct("}")) {
      body.push_back(parse_statement());
    }
    return body;
  }

  ExprPtr parse_expression() { return parse_binary(0); }

 private:
  Assignment parse_statement() {
    Assignment stmt;
    const int line = lex_.line();
    const std::string target = lex_.expect_ident("assignment target");
    if (target == "rd") {
      stmt.target = Assignment::Target::kRd;
    } else if (symbols_.states.count(target)) {
      stmt.target = Assignment::Target::kState;
      stmt.name = target;
    } else if (symbols_.regfiles.count(target)) {
      stmt.target = Assignment::Target::kRegfileElem;
      stmt.name = target;
      lex_.expect_punct("[");
      stmt.index = parse_expression();
      lex_.expect_punct("]");
    } else {
      throw Error("line ", line, ": assignment target '", target,
                  "' is not rd, a state, or a regfile");
    }
    lex_.expect_punct("=");
    stmt.value = parse_expression();
    lex_.expect_punct(";");
    return stmt;
  }

  // Precedence levels, low to high.
  static int precedence(std::string_view op) {
    if (op == "|") return 1;
    if (op == "^") return 2;
    if (op == "&") return 3;
    if (op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
        op == ">=") {
      return 4;
    }
    if (op == "<<" || op == ">>") return 5;
    if (op == "+" || op == "-") return 6;
    if (op == "*") return 7;
    return -1;
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      const Token& t = lex_.peek();
      if (t.kind != TokKind::kPunct) return lhs;
      const int prec = precedence(t.text);
      if (prec < 0 || prec < min_prec) return lhs;
      const std::string op = lex_.next().text;
      ExprPtr rhs = parse_binary(prec + 1);
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->op = op;
      node->args.push_back(std::move(lhs));
      node->args.push_back(std::move(rhs));
      lhs = std::move(node);
    }
  }

  ExprPtr parse_unary() {
    if (lex_.peek().kind == TokKind::kPunct &&
        (lex_.peek().text == "~" || lex_.peek().text == "-")) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->op = lex_.next().text;
      node->args.push_back(parse_unary());
      return node;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& t = lex_.peek();
    if (t.kind == TokKind::kNumber) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kLiteral;
      node->literal = lex_.next().number;
      return node;
    }
    if (t.kind == TokKind::kPunct && t.text == "(") {
      lex_.next();
      ExprPtr inner = parse_expression();
      lex_.expect_punct(")");
      return inner;
    }
    if (t.kind != TokKind::kIdent) {
      throw Error("line ", t.line, ": expected expression, got '", t.text,
                  "'");
    }
    const int line = t.line;
    const std::string name = lex_.next().text;
    auto node = std::make_unique<Expr>();
    if (name == "rs1") {
      node->kind = ExprKind::kRs1;
      return node;
    }
    if (name == "rs2") {
      node->kind = ExprKind::kRs2;
      return node;
    }
    if (lex_.accept_punct("(")) {
      node->kind = ExprKind::kCall;
      node->name = name;
      if (!lex_.accept_punct(")")) {
        node->args.push_back(parse_expression());
        while (lex_.accept_punct(",")) {
          node->args.push_back(parse_expression());
        }
        lex_.expect_punct(")");
      }
      return node;
    }
    if (lex_.accept_punct("[")) {
      if (symbols_.regfiles.count(name)) {
        node->kind = ExprKind::kRegfile;
      } else if (symbols_.tables.count(name)) {
        node->kind = ExprKind::kTable;
      } else {
        throw Error("line ", line, ": '", name,
                    "' is not a declared regfile or table");
      }
      node->name = name;
      node->args.push_back(parse_expression());
      lex_.expect_punct("]");
      return node;
    }
    if (symbols_.states.count(name)) {
      node->kind = ExprKind::kState;
      node->name = name;
      return node;
    }
    throw Error("line ", line, ": unknown identifier '", name,
                "' in expression");
  }

  Lexer& lex_;
  const SymbolKinds& symbols_;
};

// ---------------------------------------------------------------------------
// Top-level TIE-lite parser
// ---------------------------------------------------------------------------

class TieParser {
 public:
  explicit TieParser(std::string_view source) : lex_(source) {}

  TieSpec parse() {
    TieSpec spec;
    for (;;) {
      const Token& t = lex_.peek();
      if (t.kind == TokKind::kEnd) break;
      if (t.kind != TokKind::kIdent) {
        throw Error("line ", t.line, ": expected declaration, got '", t.text,
                    "'");
      }
      if (t.text == "regfile") {
        parse_regfile(&spec);
      } else if (t.text == "state") {
        parse_state(&spec);
      } else if (t.text == "table") {
        parse_table(&spec);
      } else if (t.text == "instruction") {
        parse_instruction(&spec);
      } else {
        throw Error("line ", t.line, ": unknown declaration '", t.text, "'");
      }
    }
    return spec;
  }

 private:
  /// Parses `key=NUMBER`, verifying the key name.
  std::uint64_t parse_kv(const char* key) {
    const std::string ident = lex_.expect_ident(key);
    if (ident != key) {
      throw Error("line ", lex_.line(), ": expected '", key, "=', got '",
                  ident, "'");
    }
    lex_.expect_punct("=");
    return lex_.expect_number(key);
  }

  void parse_regfile(TieSpec* spec) {
    lex_.next();  // 'regfile'
    RegfileDecl d;
    d.line = lex_.line();
    d.name = lex_.expect_ident("regfile name");
    d.width = static_cast<unsigned>(parse_kv("width"));
    d.size = static_cast<unsigned>(parse_kv("size"));
    symbols_.regfiles.insert(d.name);
    spec->regfiles.push_back(std::move(d));
  }

  void parse_state(TieSpec* spec) {
    lex_.next();  // 'state'
    StateDecl d;
    d.line = lex_.line();
    d.name = lex_.expect_ident("state name");
    d.width = static_cast<unsigned>(parse_kv("width"));
    symbols_.states.insert(d.name);
    spec->states.push_back(std::move(d));
  }

  void parse_table(TieSpec* spec) {
    lex_.next();  // 'table'
    TableDecl d;
    d.line = lex_.line();
    d.name = lex_.expect_ident("table name");
    const auto size = static_cast<std::size_t>(parse_kv("size"));
    d.width = static_cast<unsigned>(parse_kv("width"));
    lex_.expect_punct("{");
    if (!lex_.accept_punct("}")) {
      d.values.push_back(lex_.expect_number("table value"));
      while (lex_.accept_punct(",")) {
        d.values.push_back(lex_.expect_number("table value"));
      }
      lex_.expect_punct("}");
    }
    if (d.values.size() != size) {
      throw Error("line ", d.line, ": table '", d.name, "' declares size ",
                  size, " but lists ", d.values.size(), " values");
    }
    symbols_.tables.insert(d.name);
    spec->tables.push_back(std::move(d));
  }

  void parse_instruction(TieSpec* spec) {
    lex_.next();  // 'instruction'
    InstructionDecl d;
    d.line = lex_.line();
    d.name = lex_.expect_ident("instruction name");
    lex_.expect_punct("{");
    while (!lex_.accept_punct("}")) {
      const int line = lex_.line();
      const std::string item = lex_.expect_ident("instruction item");
      if (item == "latency") {
        d.latency = static_cast<unsigned>(lex_.expect_number("latency"));
      } else if (item == "reads") {
        parse_operand_list(line, /*reads=*/true, &d);
      } else if (item == "writes") {
        parse_operand_list(line, /*reads=*/false, &d);
      } else if (item == "isolated") {
        d.isolated = true;
      } else if (item == "use") {
        d.uses.push_back(parse_use(line));
      } else if (item == "semantics") {
        SemanticsParser sem(lex_, symbols_);
        d.semantics = sem.parse_body();
      } else {
        throw Error("line ", line, ": unknown instruction item '", item, "'");
      }
    }
    spec->instructions.push_back(std::move(d));
  }

  void parse_operand_list(int line, bool reads, InstructionDecl* d) {
    for (;;) {
      const std::string operand = lex_.expect_ident("operand");
      if (reads && operand == "rs1") {
        d->reads_rs1 = true;
      } else if (reads && operand == "rs2") {
        d->reads_rs2 = true;
      } else if (!reads && operand == "rd") {
        d->writes_rd = true;
      } else {
        throw Error("line ", line, ": invalid ", reads ? "reads" : "writes",
                    " operand '", operand, "'");
      }
      if (!lex_.accept_punct(",")) break;
    }
  }

  ComponentUse parse_use(int line) {
    ComponentUse use;
    const std::string cls_name = lex_.expect_ident("component class");
    const auto cls = find_component_class(cls_name);
    if (!cls) {
      throw Error("line ", line, ": unknown component class '", cls_name,
                  "'");
    }
    use.cls = *cls;
    // Optional key=value attributes in any order.
    for (;;) {
      const Token& t = lex_.peek();
      if (t.kind != TokKind::kIdent ||
          (t.text != "width" && t.text != "count" && t.text != "entries" &&
           t.text != "cycles")) {
        break;
      }
      const std::string key = lex_.next().text;
      lex_.expect_punct("=");
      if (key == "cycles") {
        use.active_cycles.push_back(
            static_cast<unsigned>(lex_.expect_number("cycle")));
        while (lex_.accept_punct(",")) {
          use.active_cycles.push_back(
              static_cast<unsigned>(lex_.expect_number("cycle")));
        }
      } else {
        const auto value = static_cast<unsigned>(lex_.expect_number(key.c_str()));
        if (key == "width") use.width = value;
        if (key == "count") use.count = value;
        if (key == "entries") use.entries = value;
      }
    }
    return use;
  }

  Lexer lex_;
  SymbolKinds symbols_;
};

}  // namespace

TieSpec parse_tie(std::string_view source) { return TieParser(source).parse(); }

}  // namespace exten::tie
