#pragma once

// Parsed (unvalidated) form of a TIE-lite specification.
//
// A specification is a text document declaring custom architectural state
// and custom instructions:
//
//   # GF(2^8) multiply-accumulate extension
//   state acc width=32
//   table gflog size=256 width=8 { 0, 0, 1, 25, 2, ... }
//
//   instruction gfmac {
//     latency 1
//     reads rs1, rs2
//     use table  width=8 entries=256 count=2
//     use adder  width=8
//     use logic  width=8
//     semantics {
//       acc = acc ^ gflog[rs1 ^ rs2];
//     }
//   }
//
// Parsing produces the structures below; the TIE compiler (tie/compiler.h)
// validates them and binds them into an executable configuration.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tie/components.h"
#include "tie/expr.h"

namespace exten::tie {

/// `regfile NAME width=W size=N`
struct RegfileDecl {
  std::string name;
  unsigned width = 32;
  unsigned size = 1;
  int line = 0;
};

/// `state NAME width=W`
struct StateDecl {
  std::string name;
  unsigned width = 32;
  int line = 0;
};

/// `table NAME size=N width=W { v0, v1, ... }`
struct TableDecl {
  std::string name;
  unsigned width = 8;
  std::vector<std::uint64_t> values;
  int line = 0;
};

/// `instruction NAME { ... }`
struct InstructionDecl {
  std::string name;
  unsigned latency = 1;
  bool reads_rs1 = false;
  bool reads_rs2 = false;
  bool writes_rd = false;
  /// Operand isolation: when set, the datapath's inputs are gated and base
  /// instructions driving the shared operand buses do not activate it.
  bool isolated = false;
  std::vector<ComponentUse> uses;
  std::vector<Assignment> semantics;
  int line = 0;
};

/// A whole TIE-lite document.
struct TieSpec {
  std::vector<RegfileDecl> regfiles;
  std::vector<StateDecl> states;
  std::vector<TableDecl> tables;
  std::vector<InstructionDecl> instructions;
};

/// Parses TIE-lite source text. Declarations must precede use (the
/// semantics parser classifies identifiers as state/regfile/table from the
/// declarations already seen). Throws exten::Error with a line-prefixed
/// message on any syntax error.
TieSpec parse_tie(std::string_view source);

}  // namespace exten::tie
