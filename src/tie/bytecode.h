#pragma once

// Flat postfix bytecode for TIE-lite semantics.
//
// The tree-walking evaluator (tie::eval / tie::execute) chases one heap
// pointer per AST node and string-compares operator spellings on every
// dynamic execution. The bytecode compiler lowers a custom instruction's
// assignment list ONCE (at TieConfiguration::compile time) into a dense
// vector of fixed-size ops executed by a stack machine, so the per-execution
// cost is a linear scan over contiguous memory with an integer-dispatched
// switch.
//
// Design notes for bit-exactness with the tree walker:
//  - Values are uint64, exactly as in EvalContext; all arithmetic,
//    comparisons and shifts replicate eval_binary / eval_call semantics
//    (unsigned compares, shift >= 64 yields 0, unary '-' is ~v + 1, ...).
//  - States and register files are addressed by declaration slot
//    (TieState::*_slot); slots are resolved from names at compile time.
//  - Lookup tables referenced by the semantics are copied into the program
//    so execution needs no external table map and the program stays valid
//    however the owning TieConfiguration is copied or moved.
//  - sel() is evaluated eagerly (both branches) — semantics expressions are
//    side-effect free, so the result is identical to the tree walker's lazy
//    evaluation.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tie/expr.h"
#include "tie/state.h"

namespace exten::tie {

/// Stack-machine operations. Value-stack effects in brackets.
enum class BcOp : std::uint8_t {
  kPushLit,      ///< [-0 +1] push `imm`
  kPushRs1,      ///< [-0 +1] push rs1 operand
  kPushRs2,      ///< [-0 +1] push rs2 operand
  kPushState,    ///< [-0 +1] push state slot `arg`
  kPushRegfile,  ///< [-1 +1] pop index, push regfile slot `arg` element
  kPushTable,    ///< [-1 +1] pop index, push table `arg` entry (wrapped)
  kNot,          ///< [-1 +1] bitwise complement
  kNeg,          ///< [-1 +1] two's-complement negate (~v + 1)
  kAdd, kSub, kMul, kAnd, kOr, kXor,    ///< [-2 +1]
  kShl, kShr,                           ///< [-2 +1] shift >= 64 yields 0
  kEq, kNe, kLt, kLe, kGt, kGe,         ///< [-2 +1] unsigned compares
  kSext,      ///< [-2 +1] pop width then value; sign-extend
  kZext,      ///< [-2 +1] pop width then value; zero-extend
  kSel,       ///< [-3 +1] pop else, then, cond
  kMin, kMax,      ///< [-2 +1] unsigned
  kMinS, kMaxS,    ///< [-2 +1] signed
  kAbs,            ///< [-1 +1] signed absolute value
  kPopcount,       ///< [-1 +1]
  kAsr,            ///< [-3 +1] pop width, shift, value; arithmetic shift
  kStoreRd,        ///< [-1] pop value into the rd accumulator
  kStoreState,     ///< [-1] pop value into state slot `arg`
  kStoreRegfile,   ///< [-2] pop index then value into regfile slot `arg`

  // Immediate forms produced by the literal-fusion peephole: a kPushLit
  // whose value is consumed as the *top* stack operand of the next op folds
  // into one instruction carrying the literal in `imm`. Postfix adjacency
  // guarantees the literal is that operand, so results are unchanged — only
  // the dispatch count drops. Semantics bodies are literal-heavy (every
  // sext/zext width, constant masks, shifts and bounds), so this roughly
  // halves the instruction count of typical programs.
  kAddImm, kSubImm, kMulImm, kAndImm, kOrImm, kXorImm,  ///< [-1 +1]
  kShlImm, kShrImm,            ///< [-1 +1] shift >= 64 yields 0
  kEqImm, kNeImm, kLtImm, kLeImm, kGtImm, kGeImm,       ///< [-1 +1]
  kSextImm, kZextImm,          ///< [-1 +1] width in `imm`
  kMinImm, kMaxImm,            ///< [-1 +1] unsigned, bound in `imm`
  kMinSImm, kMaxSImm,          ///< [-1 +1] signed, bound in `imm`
  kAsrImm,             ///< [-2 +1] width in `imm`; pop shift then value
  kPushRegfileImm,     ///< [-0 +1] push regfile slot `arg` element `imm`
  kStoreRegfileImm,    ///< [-1] pop value into regfile slot `arg` elem `imm`
};

/// One fixed-size bytecode instruction.
struct BcInstr {
  BcOp op = BcOp::kPushLit;
  std::uint32_t arg = 0;   ///< state / regfile slot or table index
  std::uint64_t imm = 0;   ///< literal value (kPushLit)
};

/// Compile-time symbol resolution context: name -> slot for states and
/// register files (declaration order, matching TieState), plus the bound
/// lookup tables.
struct BytecodeSymbols {
  std::map<std::string, std::uint32_t> state_slots;
  std::map<std::string, std::uint32_t> regfile_slots;
  const std::map<std::string, TableData>* tables = nullptr;
};

/// A compiled, self-contained semantics program.
class BytecodeProgram {
 public:
  /// Lowers an assignment list. Throws exten::Error on references to
  /// symbols absent from `symbols` (the TIE compiler validates specs, so
  /// this only fires on malformed hand-built ASTs).
  static BytecodeProgram compile(const std::vector<Assignment>& body,
                                 const BytecodeSymbols& symbols);

  bool empty() const { return code_.empty(); }
  std::size_t size() const { return code_.size(); }
  unsigned max_stack() const { return max_stack_; }
  const std::vector<BcInstr>& code() const { return code_; }

  /// Executes the program; returns the final rd accumulator (0 when the
  /// semantics never assign rd) and mutates `state` through slot accessors.
  /// `state` may be null only for programs that reference no custom state.
  std::uint32_t run(std::uint32_t rs1, std::uint32_t rs2,
                    TieState* state) const;

 private:
  /// The interpreter loop over a caller-provided evaluation stack (sized
  /// at least max_stack_).
  std::uint32_t run_on(std::uint64_t* stack, std::uint32_t rs1,
                       std::uint32_t rs2, TieState* state) const;

  std::vector<BcInstr> code_;
  std::vector<TableData> tables_;  ///< interned copies, indexed by BcInstr::arg
  unsigned max_stack_ = 0;
};

}  // namespace exten::tie
