#pragma once

// The custom-hardware component library.
//
// TIE-lite datapaths are compositions of primitives drawn from the ten
// component categories of the paper (§IV-B.1, "Structural Macro-model
// Variables"): (1) multiplier, (2) adder/subtractor/comparator, (3) bit-wise
// logic / reduction logic / multiplexers, (4) shifter, (5) custom registers,
// and the specialized TIE modules (6) TIE mult, (7) TIE mac, (8) TIE add,
// (9) TIE csa, (10) table.
//
// Each category has a bit-width complexity factor C(W): linear for
// adder-like structures, quadratic for multiplier arrays, and
// entries-scaled for lookup tables. Structural macro-model variables
// accumulate (active cycles) x C(W); the RTL power model charges
// (unit energy) x C(W) x (activity factor) per active cycle, which is what
// makes the linear macro-model template well-posed.

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace exten::tie {

/// The ten component categories of the paper, in Table I order.
enum class ComponentClass : std::uint8_t {
  kMultiplier = 0,  ///< generic multiplier array
  kAdderCmp,        ///< adder / subtractor / comparator
  kLogic,           ///< bit-wise logic, reduction logic, multiplexers
  kShifter,         ///< barrel shifter
  kCustomReg,       ///< custom register / register file storage
  kTieMult,         ///< specialized TIE multiplier module
  kTieMac,          ///< specialized TIE multiply-accumulate module
  kTieAdd,          ///< specialized TIE adder module
  kTieCsa,          ///< specialized TIE carry-save adder module
  kTable,           ///< lookup table
  kClassCount,
};

inline constexpr std::size_t kComponentClassCount =
    static_cast<std::size_t>(ComponentClass::kClassCount);

/// Short name used in TIE-lite `use` declarations and reports.
std::string_view component_class_name(ComponentClass cls);

/// Reverse lookup for the parser; nullopt for unknown names.
std::optional<ComponentClass> find_component_class(std::string_view name);

/// True for categories whose area/energy grows quadratically with width
/// (multiplier arrays).
bool is_quadratic(ComponentClass cls);

/// Bit-width complexity factor C(W) (paper §IV-B.1), normalized so a
/// typical primitive has C = 1 and the per-category unit energies carry
/// the pJ magnitude:
///  - quadratic classes:  (W/32)^2   (multiplier arrays)
///  - kTable:             (W/8) * log2(entries) / 8
///  - all other classes:  W/32       (linear)
/// Preconditions: width >= 1; for kTable, entries >= 2.
double complexity(ComponentClass cls, unsigned width, unsigned entries = 0);

/// One primitive instantiated inside a custom-instruction datapath.
struct ComponentUse {
  ComponentClass cls = ComponentClass::kLogic;
  unsigned width = 32;    ///< bit-width of the primitive
  unsigned count = 1;     ///< identical parallel instances
  unsigned entries = 0;   ///< table entries (kTable only)
  /// Pipeline cycles (0-based, < instruction latency) in which this
  /// primitive is active. Empty means "active in every cycle".
  std::vector<unsigned> active_cycles;

  /// Active cycles per instruction execution given the latency.
  unsigned cycles_active(unsigned latency) const {
    return active_cycles.empty()
               ? latency
               : static_cast<unsigned>(active_cycles.size());
  }

  /// Total complexity contribution of this use (count x C(W)).
  double total_complexity() const {
    return static_cast<double>(count) * complexity(cls, width, entries);
  }
};

/// Upper bound on primitive widths accepted by the TIE compiler.
inline constexpr unsigned kMaxComponentWidth = 128;

}  // namespace exten::tie
