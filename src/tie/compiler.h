#pragma once

// The TIE-lite compiler: validates a parsed specification and binds it into
// a TieConfiguration — the object the assembler, the simulator, the
// resource-usage analyzer, and the RTL power model all consume.
//
// This mirrors the role of the Tensilica TIE compiler in the paper (§II):
// "The TIE compiler processes the custom instruction specification and
// facilitates seamless integration of the added custom hardware with the
// base processor configuration."

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "isa/assembler.h"
#include "tie/bytecode.h"
#include "tie/components.h"
#include "tie/expr.h"
#include "tie/spec.h"
#include "tie/state.h"

namespace exten::tie {

/// Upper bound on the latency of a custom instruction (EX-stage occupancy).
inline constexpr unsigned kMaxLatency = 16;

/// A fully validated, executable custom instruction.
struct CustomInstruction {
  std::string name;
  std::uint8_t func = 0;  ///< extension id in the CUSTOM opcode's func field
  unsigned latency = 1;
  bool reads_rs1 = false;
  bool reads_rs2 = false;
  bool writes_rd = false;
  bool isolated = false;

  /// True when the instruction touches the *generic* register file
  /// (contributes to the macro-model side-effect variable N_cisef).
  bool uses_generic_regfile() const {
    return reads_rs1 || reads_rs2 || writes_rd;
  }

  /// All datapath components: explicit `use` declarations plus implicit
  /// custom-register and table components derived from the semantics.
  std::vector<ComponentUse> components;

  std::vector<Assignment> semantics;

  /// The semantics lowered to stack-machine bytecode (tie/bytecode.h) by
  /// TieConfiguration::compile. Hand-built instructions may leave this
  /// empty; execution then falls back to the tree-walking evaluator.
  BytecodeProgram bytecode;

  /// Per-category weighted active-cycle contribution of ONE execution:
  /// sum over components of count x C(W) x (cycles active). This is what the
  /// dynamic resource-usage analysis accumulates per retired instruction.
  std::array<double, kComponentClassCount> execution_weights{};

  /// Per-category weighted contribution of the datapath's *input stage*
  /// (components active in cycle 0), charged when a base-processor
  /// instruction toggles the shared operand buses of a non-isolated
  /// datapath (paper Example 1, side effects).
  std::array<double, kComponentClassCount> input_stage_weights{};

  /// Total complexity of the datapath (area proxy used in reports).
  double total_complexity = 0.0;
};

/// A compiled processor extension: the set of custom instructions plus the
/// custom architectural state and lookup tables they reference.
///
/// Thread safety: a TieConfiguration is immutable after compile() and may
/// be shared freely across threads. execute() is const and mutates only
/// the caller-supplied TieState, so concurrent executions against
/// *distinct* TieState instances are safe (each sim::Cpu owns its own).
class TieConfiguration {
 public:
  /// An empty configuration (base processor only).
  TieConfiguration() = default;

  const std::vector<CustomInstruction>& instructions() const {
    return instructions_;
  }
  bool empty() const { return instructions_.empty(); }

  /// Instruction by extension id. Throws exten::Error for an unassigned id
  /// (the processor would raise an illegal-instruction exception).
  const CustomInstruction& instruction(std::uint8_t func) const;

  /// Instruction by name; nullptr when absent.
  const CustomInstruction* find(std::string_view name) const;

  /// Mnemonic tables for the assembler / disassembler.
  std::map<std::string, isa::CustomMnemonic, std::less<>> assembler_mnemonics()
      const;
  std::map<std::uint8_t, std::string> disassembler_mnemonics() const;

  /// Creates the run-time custom state (all states/regfiles declared,
  /// zero-initialized).
  TieState make_state() const;

  const std::map<std::string, TableData>& tables() const { return tables_; }

  /// Declared custom state / register files (for content hashing and
  /// reports). Widths matter: semantics results are masked to them.
  const std::vector<StateDecl>& state_decls() const { return state_decls_; }
  const std::vector<RegfileDecl>& regfile_decls() const {
    return regfile_decls_;
  }

  /// Executes the semantics of instruction `func`: returns the rd result
  /// (0 when the instruction does not write rd) and mutates custom state.
  /// Runs the compiled bytecode when available (the fast engine's path),
  /// falling back to the tree walker for hand-built instructions.
  std::uint32_t execute(std::uint8_t func, std::uint32_t rs1,
                        std::uint32_t rs2, TieState* state) const;

  /// Same, on an already-resolved instruction (no func bounds lookup); the
  /// simulator's predecoded hot path calls this with its cached pointer.
  std::uint32_t execute(const CustomInstruction& ci, std::uint32_t rs1,
                        std::uint32_t rs2, TieState* state) const;

  /// Threaded-tier entry point: runs an instruction the caller has already
  /// proven to carry compiled bytecode (the superblock builder checks once
  /// per block instead of once per execution), entering the bytecode VM
  /// directly. Precondition: !ci.bytecode.empty().
  std::uint32_t execute_bytecode(const CustomInstruction& ci,
                                 std::uint32_t rs1, std::uint32_t rs2,
                                 TieState* state) const;

  /// Reference path: always interprets the semantics by walking the Expr
  /// tree (tie::eval), bypassing the bytecode. The differential tests pin
  /// the bytecode against this.
  std::uint32_t execute_reference(std::uint8_t func, std::uint32_t rs1,
                                  std::uint32_t rs2, TieState* state) const;
  std::uint32_t execute_reference(const CustomInstruction& ci,
                                  std::uint32_t rs1, std::uint32_t rs2,
                                  TieState* state) const;

  /// Sum of per-category input-stage weights over all non-isolated
  /// instructions; this is the custom hardware "visible" to base-processor
  /// operand-bus traffic.
  const std::array<double, kComponentClassCount>& shared_bus_weights() const {
    return shared_bus_weights_;
  }

  /// Builds a configuration from a parsed spec. Validates every rule (see
  /// compiler.cpp) and throws exten::Error with a descriptive message on
  /// the first violation.
  static TieConfiguration compile(const TieSpec& spec);

 private:
  std::vector<CustomInstruction> instructions_;
  std::vector<RegfileDecl> regfile_decls_;
  std::vector<StateDecl> state_decls_;
  std::map<std::string, TableData> tables_;
  std::array<double, kComponentClassCount> shared_bus_weights_{};
};

// Defined here so the simulator's per-custom-instruction call is one level
// deep (straight into BytecodeProgram::run) instead of two.
inline std::uint32_t TieConfiguration::execute(const CustomInstruction& ci,
                                               std::uint32_t rs1,
                                               std::uint32_t rs2,
                                               TieState* state) const {
  if (!ci.bytecode.empty()) {
    const std::uint32_t rd = ci.bytecode.run(rs1, rs2, state);
    return ci.writes_rd ? rd : 0;
  }
  return execute_reference(ci, rs1, rs2, state);
}

inline std::uint32_t TieConfiguration::execute_bytecode(
    const CustomInstruction& ci, std::uint32_t rs1, std::uint32_t rs2,
    TieState* state) const {
  const std::uint32_t rd = ci.bytecode.run(rs1, rs2, state);
  return ci.writes_rd ? rd : 0;
}

/// Parses and compiles TIE-lite source in one step.
TieConfiguration compile_tie_source(std::string_view source);

}  // namespace exten::tie
