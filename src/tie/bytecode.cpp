#include "tie/bytecode.h"

#include <bit>

#include "util/error.h"

// The interpreter loop uses threaded dispatch (computed goto) where the
// GNU extension exists — one indirect branch per handler gives the
// predictor one history slot per bytecode op instead of a single
// polymorphic dispatch branch, which measurably speeds custom-heavy
// workloads. The same EXTEN_THREADED_FORCE_SWITCH flag that covers the
// threaded engine's fallback forces the portable switch here too.
#if !defined(EXTEN_THREADED_FORCE_SWITCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define EXTEN_BC_COMPUTED_GOTO 1
#else
#define EXTEN_BC_COMPUTED_GOTO 0
#endif

namespace exten::tie {

namespace {

/// Emits postfix code for one expression tree, tracking stack depth.
class Lowerer {
 public:
  Lowerer(const BytecodeSymbols& symbols, std::vector<BcInstr>* code,
          std::vector<TableData>* tables)
      : symbols_(symbols), code_(code), tables_(tables) {}

  void emit_expr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        emit(BcOp::kPushLit, 0, expr.literal, +1);
        return;
      case ExprKind::kRs1:
        emit(BcOp::kPushRs1, 0, 0, +1);
        return;
      case ExprKind::kRs2:
        emit(BcOp::kPushRs2, 0, 0, +1);
        return;
      case ExprKind::kState:
        emit(BcOp::kPushState, state_slot(expr.name), 0, +1);
        return;
      case ExprKind::kRegfile:
        EXTEN_CHECK(expr.args.size() == 1, "regfile ref needs an index");
        emit_expr(*expr.args[0]);
        emit(BcOp::kPushRegfile, regfile_slot(expr.name), 0, 0);
        return;
      case ExprKind::kTable:
        EXTEN_CHECK(expr.args.size() == 1, "table ref needs an index");
        emit_expr(*expr.args[0]);
        emit(BcOp::kPushTable, table_index(expr.name), 0, 0);
        return;
      case ExprKind::kUnary: {
        EXTEN_CHECK(expr.args.size() == 1, "unary op needs one operand");
        emit_expr(*expr.args[0]);
        if (expr.op == "~") {
          emit(BcOp::kNot, 0, 0, 0);
        } else if (expr.op == "-") {
          emit(BcOp::kNeg, 0, 0, 0);
        } else {
          throw Error("unknown unary operator '", expr.op, "'");
        }
        return;
      }
      case ExprKind::kBinary: {
        EXTEN_CHECK(expr.args.size() == 2, "binary op needs two operands");
        emit_expr(*expr.args[0]);
        emit_expr(*expr.args[1]);
        emit(binary_op(expr.op), 0, 0, -1);
        return;
      }
      case ExprKind::kCall:
        emit_call(expr);
        return;
    }
    throw Error("corrupt expression node");
  }

  void emit_store(BcOp op, std::uint32_t arg, int delta) {
    emit(op, arg, 0, delta);
  }

  std::uint32_t state_slot(const std::string& name) const {
    auto it = symbols_.state_slots.find(name);
    EXTEN_CHECK(it != symbols_.state_slots.end(), "unknown TIE state '", name,
                "'");
    return it->second;
  }

  std::uint32_t regfile_slot(const std::string& name) const {
    auto it = symbols_.regfile_slots.find(name);
    EXTEN_CHECK(it != symbols_.regfile_slots.end(), "unknown TIE regfile '",
                name, "'");
    return it->second;
  }

  unsigned max_stack() const { return max_stack_; }

 private:
  void emit(BcOp op, std::uint32_t arg, std::uint64_t imm, int delta) {
    code_->push_back(BcInstr{op, arg, imm});
    depth_ += delta;
    EXTEN_CHECK(depth_ >= 0, "bytecode stack underflow while lowering");
    if (static_cast<unsigned>(depth_) > max_stack_) {
      max_stack_ = static_cast<unsigned>(depth_);
    }
  }

  static BcOp binary_op(const std::string& op) {
    if (op == "+") return BcOp::kAdd;
    if (op == "-") return BcOp::kSub;
    if (op == "*") return BcOp::kMul;
    if (op == "&") return BcOp::kAnd;
    if (op == "|") return BcOp::kOr;
    if (op == "^") return BcOp::kXor;
    if (op == "<<") return BcOp::kShl;
    if (op == ">>") return BcOp::kShr;
    if (op == "==") return BcOp::kEq;
    if (op == "!=") return BcOp::kNe;
    if (op == "<") return BcOp::kLt;
    if (op == "<=") return BcOp::kLe;
    if (op == ">") return BcOp::kGt;
    if (op == ">=") return BcOp::kGe;
    throw Error("unknown binary operator '", op, "'");
  }

  void emit_call(const Expr& expr) {
    const auto argc = expr.args.size();
    auto need = [&](std::size_t n) {
      EXTEN_CHECK(argc == n, "builtin ", expr.name, " expects ", n,
                  " argument(s), got ", argc);
    };
    auto args_then = [&](std::size_t n, BcOp op) {
      need(n);
      for (std::size_t i = 0; i < n; ++i) emit_expr(*expr.args[i]);
      emit(op, 0, 0, 1 - static_cast<int>(n));
    };

    if (expr.name == "sext") return args_then(2, BcOp::kSext);
    if (expr.name == "zext") return args_then(2, BcOp::kZext);
    if (expr.name == "sel") return args_then(3, BcOp::kSel);
    if (expr.name == "min") return args_then(2, BcOp::kMin);
    if (expr.name == "max") return args_then(2, BcOp::kMax);
    if (expr.name == "mins") return args_then(2, BcOp::kMinS);
    if (expr.name == "maxs") return args_then(2, BcOp::kMaxS);
    if (expr.name == "abs") return args_then(1, BcOp::kAbs);
    if (expr.name == "popcount") return args_then(1, BcOp::kPopcount);
    if (expr.name == "asr") return args_then(3, BcOp::kAsr);
    throw Error("unknown builtin function '", expr.name, "'");
  }

  std::uint32_t table_index(const std::string& name) {
    EXTEN_CHECK(symbols_.tables != nullptr, "no TIE tables bound");
    auto it = symbols_.tables->find(name);
    EXTEN_CHECK(it != symbols_.tables->end(), "unknown table '", name, "'");
    // Intern: one copy per distinct table referenced by this program.
    for (std::size_t i = 0; i < interned_.size(); ++i) {
      if (interned_[i] == name) return static_cast<std::uint32_t>(i);
    }
    interned_.push_back(name);
    tables_->push_back(it->second);
    return static_cast<std::uint32_t>(interned_.size() - 1);
  }

  const BytecodeSymbols& symbols_;
  std::vector<BcInstr>* code_;
  std::vector<TableData>* tables_;
  std::vector<std::string> interned_;
  int depth_ = 0;
  unsigned max_stack_ = 0;
};

/// Maps an op to its fused immediate form; false when the op has none (or
/// when fusing would be unsound, e.g. kSel's popped else-branch).
bool imm_variant(BcOp op, BcOp* out) {
  switch (op) {
    case BcOp::kAdd: *out = BcOp::kAddImm; return true;
    case BcOp::kSub: *out = BcOp::kSubImm; return true;
    case BcOp::kMul: *out = BcOp::kMulImm; return true;
    case BcOp::kAnd: *out = BcOp::kAndImm; return true;
    case BcOp::kOr: *out = BcOp::kOrImm; return true;
    case BcOp::kXor: *out = BcOp::kXorImm; return true;
    case BcOp::kShl: *out = BcOp::kShlImm; return true;
    case BcOp::kShr: *out = BcOp::kShrImm; return true;
    case BcOp::kEq: *out = BcOp::kEqImm; return true;
    case BcOp::kNe: *out = BcOp::kNeImm; return true;
    case BcOp::kLt: *out = BcOp::kLtImm; return true;
    case BcOp::kLe: *out = BcOp::kLeImm; return true;
    case BcOp::kGt: *out = BcOp::kGtImm; return true;
    case BcOp::kGe: *out = BcOp::kGeImm; return true;
    case BcOp::kSext: *out = BcOp::kSextImm; return true;
    case BcOp::kZext: *out = BcOp::kZextImm; return true;
    case BcOp::kMin: *out = BcOp::kMinImm; return true;
    case BcOp::kMax: *out = BcOp::kMaxImm; return true;
    case BcOp::kMinS: *out = BcOp::kMinSImm; return true;
    case BcOp::kMaxS: *out = BcOp::kMaxSImm; return true;
    case BcOp::kAsr: *out = BcOp::kAsrImm; return true;
    case BcOp::kPushRegfile: *out = BcOp::kPushRegfileImm; return true;
    case BcOp::kStoreRegfile: *out = BcOp::kStoreRegfileImm; return true;
    default: return false;
  }
}

/// Literal-fusion peephole. Every op above consumes its *top-of-stack*
/// operand from the instruction immediately before it when that instruction
/// is a kPushLit (postfix adjacency: the literal is the most recently
/// pushed value), so the pair collapses to one immediate-form instruction
/// with identical results. Left-to-right, so `lit lit +` still fuses the
/// `lit +` pair after the first literal is kept.
std::vector<BcInstr> fuse_literal_operands(const std::vector<BcInstr>& code) {
  std::vector<BcInstr> out;
  out.reserve(code.size());
  for (const BcInstr& ins : code) {
    BcOp fused;
    if (!out.empty() && out.back().op == BcOp::kPushLit &&
        imm_variant(ins.op, &fused)) {
      out.back() = BcInstr{fused, ins.arg, out.back().imm};
      continue;
    }
    out.push_back(ins);
  }
  return out;
}

}  // namespace

BytecodeProgram BytecodeProgram::compile(const std::vector<Assignment>& body,
                                         const BytecodeSymbols& symbols) {
  BytecodeProgram program;
  Lowerer lowerer(symbols, &program.code_, &program.tables_);
  for (const Assignment& stmt : body) {
    EXTEN_CHECK(stmt.value != nullptr, "assignment without value");
    lowerer.emit_expr(*stmt.value);
    switch (stmt.target) {
      case Assignment::Target::kRd:
        lowerer.emit_store(BcOp::kStoreRd, 0, -1);
        break;
      case Assignment::Target::kState:
        lowerer.emit_store(BcOp::kStoreState, lowerer.state_slot(stmt.name),
                           -1);
        break;
      case Assignment::Target::kRegfileElem:
        EXTEN_CHECK(stmt.index != nullptr, "regfile assignment needs index");
        lowerer.emit_expr(*stmt.index);
        lowerer.emit_store(BcOp::kStoreRegfile,
                           lowerer.regfile_slot(stmt.name), -2);
        break;
    }
  }
  program.code_ = fuse_literal_operands(program.code_);
  // max_stack_ stays the pre-fusion depth: fusion can only lower the peak,
  // so the lowerer's figure remains a valid (tight enough) bound.
  program.max_stack_ = lowerer.max_stack();
  return program;
}

std::uint32_t BytecodeProgram::run(std::uint32_t rs1, std::uint32_t rs2,
                                   TieState* state) const {
  // Semantics bodies are shallow; 32 slots covers every library instruction
  // with a wide margin, and deeper programs fall back to a heap stack. The
  // fallback lives in its own branch so the common path never constructs
  // (or destroys) a vector.
  constexpr unsigned kInlineStack = 32;
  if (max_stack_ > kInlineStack) [[unlikely]] {
    std::vector<std::uint64_t> heap_stack(max_stack_);
    return run_on(heap_stack.data(), rs1, rs2, state);
  }
  std::uint64_t inline_stack[kInlineStack];
  return run_on(inline_stack, rs1, rs2, state);
}

// Every BcOp in enumerator order; generates the dispatch table (computed
// goto) and is pinned against the enum by the static_asserts below.
#define EXTEN_BC_OPS(X)                                                   \
  X(kPushLit) X(kPushRs1) X(kPushRs2) X(kPushState) X(kPushRegfile)       \
  X(kPushTable) X(kNot) X(kNeg) X(kAdd) X(kSub) X(kMul) X(kAnd) X(kOr)    \
  X(kXor) X(kShl) X(kShr) X(kEq) X(kNe) X(kLt) X(kLe) X(kGt) X(kGe)       \
  X(kSext) X(kZext) X(kSel) X(kMin) X(kMax) X(kMinS) X(kMaxS) X(kAbs)     \
  X(kPopcount) X(kAsr) X(kStoreRd) X(kStoreState) X(kStoreRegfile)        \
  X(kAddImm) X(kSubImm) X(kMulImm) X(kAndImm) X(kOrImm) X(kXorImm)        \
  X(kShlImm) X(kShrImm) X(kEqImm) X(kNeImm) X(kLtImm) X(kLeImm) X(kGtImm) \
  X(kGeImm) X(kSextImm) X(kZextImm) X(kMinImm) X(kMaxImm) X(kMinSImm)     \
  X(kMaxSImm) X(kAsrImm) X(kPushRegfileImm) X(kStoreRegfileImm)

namespace {
constexpr BcOp kBcOrder[] = {
#define EXTEN_BC_ORDER(name) BcOp::name,
    EXTEN_BC_OPS(EXTEN_BC_ORDER)
#undef EXTEN_BC_ORDER
};
constexpr bool bc_order_consecutive() {
  for (std::size_t i = 0; i < std::size(kBcOrder); ++i) {
    if (static_cast<std::size_t>(kBcOrder[i]) != i) return false;
  }
  return true;
}
static_assert(std::size(kBcOrder) ==
                  static_cast<std::size_t>(BcOp::kStoreRegfileImm) + 1,
              "bytecode dispatch list must name every BcOp");
static_assert(bc_order_consecutive(),
              "bytecode dispatch list must match the BcOp enum order");
}  // namespace

// BC_OP opens the handler for one op; BC_NEXT advances and re-dispatches.
// `sp` points one past the top of stack; handler bodies are shared between
// the computed-goto and switch builds.
#if EXTEN_BC_COMPUTED_GOTO
#define BC_OP(name) B_##name:
#define BC_NEXT()                                        \
  do {                                                   \
    if (++ins == end) goto bc_done;                      \
    goto* kBcDispatch[static_cast<std::size_t>(ins->op)]; \
  } while (0)
#else
#define BC_OP(name) case BcOp::name:
#define BC_NEXT()    \
  do {               \
    ++ins;           \
    goto bc_loop;    \
  } while (0)
#endif

std::uint32_t BytecodeProgram::run_on(std::uint64_t* stack, std::uint32_t rs1,
                                      std::uint32_t rs2,
                                      TieState* state) const {
  const BcInstr* ins = code_.data();
  const BcInstr* const end = ins + code_.size();
  std::uint64_t* sp = stack;
  std::uint32_t rd = 0;

#if EXTEN_BC_COMPUTED_GOTO
  static const void* const kBcDispatch[] = {
#define EXTEN_BC_LABEL(name) &&B_##name,
      EXTEN_BC_OPS(EXTEN_BC_LABEL)
#undef EXTEN_BC_LABEL
  };
  static_assert(sizeof(kBcDispatch) / sizeof(kBcDispatch[0]) ==
                    std::size(kBcOrder),
                "dispatch table must cover every BcOp");
  if (ins == end) goto bc_done;
  goto* kBcDispatch[static_cast<std::size_t>(ins->op)];
#else
bc_loop:
  if (ins == end) goto bc_done;
  switch (ins->op) {
#endif

  BC_OP(kPushLit) { *sp++ = ins->imm; } BC_NEXT();
  BC_OP(kPushRs1) { *sp++ = rs1; } BC_NEXT();
  BC_OP(kPushRs2) { *sp++ = rs2; } BC_NEXT();
  BC_OP(kPushState) {
    EXTEN_CHECK(state != nullptr, "no TIE state bound");
    *sp++ = state->read_state_slot(ins->arg);
  } BC_NEXT();
  BC_OP(kPushRegfile) {
    EXTEN_CHECK(state != nullptr, "no TIE state bound");
    sp[-1] = state->read_regfile_slot(ins->arg, sp[-1]);
  } BC_NEXT();
  BC_OP(kPushTable) { sp[-1] = tables_[ins->arg].lookup(sp[-1]); } BC_NEXT();
  BC_OP(kNot) { sp[-1] = ~sp[-1]; } BC_NEXT();
  BC_OP(kNeg) { sp[-1] = ~sp[-1] + 1; } BC_NEXT();
  BC_OP(kAdd) { --sp; sp[-1] += sp[0]; } BC_NEXT();
  BC_OP(kSub) { --sp; sp[-1] -= sp[0]; } BC_NEXT();
  BC_OP(kMul) { --sp; sp[-1] *= sp[0]; } BC_NEXT();
  BC_OP(kAnd) { --sp; sp[-1] &= sp[0]; } BC_NEXT();
  BC_OP(kOr)  { --sp; sp[-1] |= sp[0]; } BC_NEXT();
  BC_OP(kXor) { --sp; sp[-1] ^= sp[0]; } BC_NEXT();
  BC_OP(kShl) {
    --sp;
    sp[-1] = sp[0] >= 64 ? 0 : sp[-1] << sp[0];
  } BC_NEXT();
  BC_OP(kShr) {
    --sp;
    sp[-1] = sp[0] >= 64 ? 0 : sp[-1] >> sp[0];
  } BC_NEXT();
  BC_OP(kEq) { --sp; sp[-1] = sp[-1] == sp[0] ? 1 : 0; } BC_NEXT();
  BC_OP(kNe) { --sp; sp[-1] = sp[-1] != sp[0] ? 1 : 0; } BC_NEXT();
  BC_OP(kLt) { --sp; sp[-1] = sp[-1] < sp[0] ? 1 : 0; } BC_NEXT();
  BC_OP(kLe) { --sp; sp[-1] = sp[-1] <= sp[0] ? 1 : 0; } BC_NEXT();
  BC_OP(kGt) { --sp; sp[-1] = sp[-1] > sp[0] ? 1 : 0; } BC_NEXT();
  BC_OP(kGe) { --sp; sp[-1] = sp[-1] >= sp[0] ? 1 : 0; } BC_NEXT();
  BC_OP(kSext) {
    --sp;
    sp[-1] = sign_extend64(sp[-1], static_cast<unsigned>(sp[0]));
  } BC_NEXT();
  BC_OP(kZext) {
    --sp;
    sp[-1] = mask_to_width(sp[-1], static_cast<unsigned>(sp[0]));
  } BC_NEXT();
  BC_OP(kSel) {
    sp -= 2;
    sp[-1] = sp[-1] != 0 ? sp[0] : sp[1];  // cond ? then : else
  } BC_NEXT();
  BC_OP(kMin) { --sp; if (sp[0] < sp[-1]) sp[-1] = sp[0]; } BC_NEXT();
  BC_OP(kMax) { --sp; if (sp[0] > sp[-1]) sp[-1] = sp[0]; } BC_NEXT();
  BC_OP(kMinS) {
    --sp;
    const auto b = static_cast<std::int64_t>(sp[0]);
    const auto a = static_cast<std::int64_t>(sp[-1]);
    sp[-1] = static_cast<std::uint64_t>(a < b ? a : b);
  } BC_NEXT();
  BC_OP(kMaxS) {
    --sp;
    const auto b = static_cast<std::int64_t>(sp[0]);
    const auto a = static_cast<std::int64_t>(sp[-1]);
    sp[-1] = static_cast<std::uint64_t>(a > b ? a : b);
  } BC_NEXT();
  BC_OP(kAbs) {
    const auto a = static_cast<std::int64_t>(sp[-1]);
    sp[-1] = static_cast<std::uint64_t>(a < 0 ? -a : a);
  } BC_NEXT();
  BC_OP(kPopcount) {
    sp[-1] = static_cast<std::uint64_t>(std::popcount(sp[-1]));
  } BC_NEXT();
  BC_OP(kAsr) {
    sp -= 2;
    const unsigned width = static_cast<unsigned>(sp[1]);
    const unsigned sh = static_cast<unsigned>(sp[0]) & 63;
    const std::int64_t v =
        static_cast<std::int64_t>(sign_extend64(sp[-1], width));
    sp[-1] = static_cast<std::uint64_t>(v >> sh);
  } BC_NEXT();
  BC_OP(kStoreRd) { rd = static_cast<std::uint32_t>(*--sp); } BC_NEXT();
  BC_OP(kStoreState) {
    EXTEN_CHECK(state != nullptr, "no TIE state bound");
    state->write_state_slot(ins->arg, *--sp);
  } BC_NEXT();
  BC_OP(kStoreRegfile) {
    EXTEN_CHECK(state != nullptr, "no TIE state bound");
    sp -= 2;
    state->write_regfile_slot(ins->arg, sp[1], sp[0]);  // index, value
  } BC_NEXT();
  // Fused immediate forms: same semantics as the op they replace, with
  // the literal operand read from `ins->imm` instead of the stack.
  BC_OP(kAddImm) { sp[-1] += ins->imm; } BC_NEXT();
  BC_OP(kSubImm) { sp[-1] -= ins->imm; } BC_NEXT();
  BC_OP(kMulImm) { sp[-1] *= ins->imm; } BC_NEXT();
  BC_OP(kAndImm) { sp[-1] &= ins->imm; } BC_NEXT();
  BC_OP(kOrImm)  { sp[-1] |= ins->imm; } BC_NEXT();
  BC_OP(kXorImm) { sp[-1] ^= ins->imm; } BC_NEXT();
  BC_OP(kShlImm) {
    sp[-1] = ins->imm >= 64 ? 0 : sp[-1] << ins->imm;
  } BC_NEXT();
  BC_OP(kShrImm) {
    sp[-1] = ins->imm >= 64 ? 0 : sp[-1] >> ins->imm;
  } BC_NEXT();
  BC_OP(kEqImm) { sp[-1] = sp[-1] == ins->imm ? 1 : 0; } BC_NEXT();
  BC_OP(kNeImm) { sp[-1] = sp[-1] != ins->imm ? 1 : 0; } BC_NEXT();
  BC_OP(kLtImm) { sp[-1] = sp[-1] < ins->imm ? 1 : 0; } BC_NEXT();
  BC_OP(kLeImm) { sp[-1] = sp[-1] <= ins->imm ? 1 : 0; } BC_NEXT();
  BC_OP(kGtImm) { sp[-1] = sp[-1] > ins->imm ? 1 : 0; } BC_NEXT();
  BC_OP(kGeImm) { sp[-1] = sp[-1] >= ins->imm ? 1 : 0; } BC_NEXT();
  BC_OP(kSextImm) {
    sp[-1] = sign_extend64(sp[-1], static_cast<unsigned>(ins->imm));
  } BC_NEXT();
  BC_OP(kZextImm) {
    sp[-1] = mask_to_width(sp[-1], static_cast<unsigned>(ins->imm));
  } BC_NEXT();
  BC_OP(kMinImm) { if (ins->imm < sp[-1]) sp[-1] = ins->imm; } BC_NEXT();
  BC_OP(kMaxImm) { if (ins->imm > sp[-1]) sp[-1] = ins->imm; } BC_NEXT();
  BC_OP(kMinSImm) {
    const auto b = static_cast<std::int64_t>(ins->imm);
    const auto a = static_cast<std::int64_t>(sp[-1]);
    sp[-1] = static_cast<std::uint64_t>(a < b ? a : b);
  } BC_NEXT();
  BC_OP(kMaxSImm) {
    const auto b = static_cast<std::int64_t>(ins->imm);
    const auto a = static_cast<std::int64_t>(sp[-1]);
    sp[-1] = static_cast<std::uint64_t>(a > b ? a : b);
  } BC_NEXT();
  BC_OP(kAsrImm) {
    --sp;
    const unsigned sh = static_cast<unsigned>(sp[0]) & 63;
    const std::int64_t v = static_cast<std::int64_t>(
        sign_extend64(sp[-1], static_cast<unsigned>(ins->imm)));
    sp[-1] = static_cast<std::uint64_t>(v >> sh);
  } BC_NEXT();
  BC_OP(kPushRegfileImm) {
    EXTEN_CHECK(state != nullptr, "no TIE state bound");
    *sp++ = state->read_regfile_slot(ins->arg, ins->imm);
  } BC_NEXT();
  BC_OP(kStoreRegfileImm) {
    EXTEN_CHECK(state != nullptr, "no TIE state bound");
    state->write_regfile_slot(ins->arg, ins->imm, *--sp);
  } BC_NEXT();

#if !EXTEN_BC_COMPUTED_GOTO
  }
  EXTEN_CHECK(false, "corrupt bytecode op ",
              static_cast<unsigned>(ins->op));
#endif

bc_done:
  return rd;
}

#undef EXTEN_BC_OPS
#undef BC_OP
#undef BC_NEXT

}  // namespace exten::tie
