#pragma once

// Abstract syntax and evaluation for the TIE-lite semantics language.
//
// Custom-instruction behaviour is written as a sequence of assignments over
// a small expression language:
//
//   semantics {
//     acc = acc + sext(rs1, 24) * sext(rs2, 24);
//     rd  = sbox[(rs1 ^ rs2) & 0xff];
//   }
//
// Values are 64-bit; reads from states/register files/tables are masked to
// the declared width, and writes are masked to the target width. Operators
// (by increasing precedence): | , ^ , & , == != < <= > >= , << >> , + - ,
// * , unary ~ - ; calls: sext(e,b) zext(e,b) sel(c,a,b) min max mins maxs
// abs(e) popcount(e) asr(e,sh,b).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace exten::tie {

class TieState;

/// Expression node kinds.
enum class ExprKind : std::uint8_t {
  kLiteral,   ///< integer literal (value in `literal`)
  kRs1,       ///< first generic-register operand
  kRs2,       ///< second generic-register operand
  kState,     ///< scalar custom state read (`name`)
  kRegfile,   ///< custom register file read (`name`, index = args[0])
  kTable,     ///< lookup table read (`name`, index = args[0])
  kUnary,     ///< unary op (`op`, operand = args[0])
  kBinary,    ///< binary op (`op`, operands = args[0..1])
  kCall,      ///< builtin function (`name`, arguments = args)
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// One expression-tree node.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  std::uint64_t literal = 0;
  std::string name;  ///< symbol / function name
  std::string op;    ///< operator spelling for kUnary / kBinary
  std::vector<ExprPtr> args;

  /// Deep copy.
  ExprPtr clone() const;
};

/// An assignment statement inside `semantics { ... }`.
struct Assignment {
  enum class Target : std::uint8_t { kRd, kState, kRegfileElem };
  Target target = Target::kRd;
  std::string name;   ///< state / regfile name (empty for rd)
  ExprPtr index;      ///< regfile element index (kRegfileElem only)
  ExprPtr value;

  Assignment clone() const;
};

/// A read-only lookup table bound into a configuration.
struct TableData {
  unsigned width = 8;
  std::vector<std::uint64_t> values;

  std::uint64_t lookup(std::uint64_t index) const {
    // Hardware tables wrap the index to the table size (power of two
    // enforced by the compiler).
    return values[static_cast<std::size_t>(index) & (values.size() - 1)];
  }
};

/// Runtime environment for semantics evaluation.
struct EvalContext {
  std::uint32_t rs1 = 0;
  std::uint32_t rs2 = 0;
  std::uint32_t rd = 0;  ///< result accumulator (written by `rd = ...`)
  TieState* state = nullptr;
  const std::map<std::string, TableData>* tables = nullptr;
};

/// Evaluates an expression. Throws exten::Error on references to
/// undeclared symbols (the compiler validates specs so this only fires on
/// malformed hand-built ASTs).
std::uint64_t eval(const Expr& expr, EvalContext& ctx);

/// Executes a statement list in order, mutating ctx (rd and custom state).
void execute(const std::vector<Assignment>& body, EvalContext& ctx);

/// Names referenced by an expression tree, used by the TIE compiler for
/// validation and implicit component derivation.
struct ReferencedSymbols {
  bool rs1 = false;
  bool rs2 = false;
  std::vector<std::string> states;
  std::vector<std::string> regfiles;
  std::vector<std::string> tables;
};

/// Scans an expression (recursively) and accumulates referenced symbols.
void collect_refs(const Expr& expr, ReferencedSymbols* out);

/// Masks `value` to `width` bits (width 64 passes through).
inline std::uint64_t mask_to_width(std::uint64_t value, unsigned width) {
  return width >= 64 ? value : (value & ((std::uint64_t{1} << width) - 1));
}

/// Sign-extends the low `bits` of `value` to 64 bits.
std::uint64_t sign_extend64(std::uint64_t value, unsigned bits);

}  // namespace exten::tie
