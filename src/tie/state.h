#pragma once

// Runtime storage for TIE-lite custom architectural state.
//
// A processor configuration may declare scalar `state` variables and custom
// `regfile`s. The simulator owns one TieState per run; the TIE compiler
// creates it pre-sized from the specification.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace exten::tie {

/// Custom architectural state (scalar states + custom register files).
class TieState {
 public:
  /// Declares a scalar state variable of `width` bits (1..64), initial 0.
  /// Throws exten::Error on duplicates or bad width.
  void declare_state(const std::string& name, unsigned width);

  /// Declares a register file with `size` entries of `width` bits each.
  void declare_regfile(const std::string& name, unsigned width,
                       unsigned size);

  /// Reads a scalar state (masked to its width). Throws on unknown name.
  std::uint64_t read_state(const std::string& name) const;

  /// Writes a scalar state (value masked to its width).
  void write_state(const std::string& name, std::uint64_t value);

  /// Reads a register file element; the index wraps to the file size.
  std::uint64_t read_regfile(const std::string& name,
                             std::uint64_t index) const;

  /// Writes a register file element; the index wraps to the file size.
  void write_regfile(const std::string& name, std::uint64_t index,
                     std::uint64_t value);

  bool has_state(const std::string& name) const;
  bool has_regfile(const std::string& name) const;

  unsigned state_width(const std::string& name) const;
  unsigned regfile_width(const std::string& name) const;
  unsigned regfile_size(const std::string& name) const;

  /// Resets every state and regfile element to zero.
  void reset();

 private:
  struct Scalar {
    unsigned width = 32;
    std::uint64_t value = 0;
  };
  struct RegFile {
    unsigned width = 32;
    std::vector<std::uint64_t> regs;
  };

  const Scalar& scalar(const std::string& name) const;
  const RegFile& file(const std::string& name) const;

  std::map<std::string, Scalar> states_;
  std::map<std::string, RegFile> regfiles_;
};

}  // namespace exten::tie
