#pragma once

// Runtime storage for TIE-lite custom architectural state.
//
// A processor configuration may declare scalar `state` variables and custom
// `regfile`s. The simulator owns one TieState per run; the TIE compiler
// creates it pre-sized from the specification.
//
// Storage is slot-indexed: declarations are appended in order, and the
// bytecode executor (tie/bytecode.h) addresses states and register files by
// their declaration index so the per-execution hot path never touches a
// name map. The name-based API remains for tests, tools and hand-built
// configurations.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace exten::tie {

/// Custom architectural state (scalar states + custom register files).
class TieState {
 public:
  /// Declares a scalar state variable of `width` bits (1..64), initial 0.
  /// Throws exten::Error on duplicates or bad width. The new state's slot
  /// is the number of states declared before it.
  void declare_state(const std::string& name, unsigned width);

  /// Declares a register file with `size` entries of `width` bits each.
  void declare_regfile(const std::string& name, unsigned width,
                       unsigned size);

  /// Reads a scalar state (masked to its width). Throws on unknown name.
  std::uint64_t read_state(const std::string& name) const;

  /// Writes a scalar state (value masked to its width).
  void write_state(const std::string& name, std::uint64_t value);

  /// Reads a register file element; the index wraps to the file size.
  std::uint64_t read_regfile(const std::string& name,
                             std::uint64_t index) const;

  /// Writes a register file element; the index wraps to the file size.
  void write_regfile(const std::string& name, std::uint64_t index,
                     std::uint64_t value);

  bool has_state(const std::string& name) const;
  bool has_regfile(const std::string& name) const;

  unsigned state_width(const std::string& name) const;
  unsigned regfile_width(const std::string& name) const;
  unsigned regfile_size(const std::string& name) const;

  /// Slot lookup (declaration order). Throws on unknown name.
  std::size_t state_slot(const std::string& name) const;
  std::size_t regfile_slot(const std::string& name) const;

  std::size_t num_states() const { return scalars_.size(); }
  std::size_t num_regfiles() const { return files_.size(); }

  // --- Slot-indexed hot path (no name lookup, no width re-mask: values are
  // masked on write, so reads return them verbatim). ---------------------

  std::uint64_t read_state_slot(std::size_t slot) const {
    return scalars_[slot].value;
  }
  void write_state_slot(std::size_t slot, std::uint64_t value) {
    Scalar& s = scalars_[slot];
    s.value = mask(value, s.width);
  }
  std::uint64_t read_regfile_slot(std::size_t slot,
                                  std::uint64_t index) const {
    const RegFile& f = files_[slot];
    return f.regs[static_cast<std::size_t>(index) % f.regs.size()];
  }
  void write_regfile_slot(std::size_t slot, std::uint64_t index,
                          std::uint64_t value) {
    RegFile& f = files_[slot];
    f.regs[static_cast<std::size_t>(index) % f.regs.size()] =
        mask(value, f.width);
  }

  /// Resets every state and regfile element to zero.
  void reset();

 private:
  struct Scalar {
    unsigned width = 32;
    std::uint64_t value = 0;
  };
  struct RegFile {
    unsigned width = 32;
    std::vector<std::uint64_t> regs;
  };

  static std::uint64_t mask(std::uint64_t value, unsigned width) {
    return width >= 64 ? value
                       : (value & ((std::uint64_t{1} << width) - 1));
  }

  const Scalar& scalar(const std::string& name) const;
  const RegFile& file(const std::string& name) const;

  std::vector<Scalar> scalars_;
  std::vector<RegFile> files_;
  std::map<std::string, std::size_t> state_index_;
  std::map<std::string, std::size_t> regfile_index_;
};

}  // namespace exten::tie
