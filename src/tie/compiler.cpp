#include "tie/compiler.h"

#include <algorithm>
#include <set>

#include "isa/isa.h"
#include "obs/trace.h"
#include "util/error.h"

namespace exten::tie {

namespace {

/// Pseudo-instruction names reserved by the assembler.
constexpr std::string_view kReservedMnemonics[] = {
    "li", "mv", "not", "neg", "ret", "b", "call"};

bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Builtin call signatures: name -> argument count. Must match eval_call in
/// expr.cpp and the bytecode lowering.
struct BuiltinSig {
  std::string_view name;
  std::size_t arity;
  /// Index of a width argument that, when a literal, must be in 1..64
  /// (npos when the builtin has no width parameter).
  std::size_t width_arg;
};

constexpr std::size_t kNoWidthArg = static_cast<std::size_t>(-1);
constexpr BuiltinSig kBuiltins[] = {
    {"sext", 2, 1},          {"zext", 2, 1},
    {"sel", 3, kNoWidthArg}, {"min", 2, kNoWidthArg},
    {"max", 2, kNoWidthArg}, {"mins", 2, kNoWidthArg},
    {"maxs", 2, kNoWidthArg}, {"abs", 1, kNoWidthArg},
    {"popcount", 1, kNoWidthArg}, {"asr", 3, 2},
};

/// Rejects malformed builtin calls at compile time instead of letting them
/// fault mid-execution: unknown names, wrong arity, and width arguments
/// that are out-of-range literals. A width that is a non-literal expression
/// is still range-checked at evaluation time.
void validate_expr(const Expr& expr, unsigned line,
                   const std::string& instr_name) {
  if (expr.kind == ExprKind::kCall) {
    const BuiltinSig* sig = nullptr;
    for (const BuiltinSig& candidate : kBuiltins) {
      if (candidate.name == expr.name) {
        sig = &candidate;
        break;
      }
    }
    EXTEN_CHECK(sig != nullptr, "line ", line, ": '", instr_name,
                "' calls unknown builtin '", expr.name, "'");
    EXTEN_CHECK(expr.args.size() == sig->arity, "line ", line, ": '",
                instr_name, "' builtin ", expr.name, " expects ", sig->arity,
                " argument(s), got ", expr.args.size());
    if (sig->width_arg != kNoWidthArg) {
      const Expr& width = *expr.args[sig->width_arg];
      if (width.kind == ExprKind::kLiteral) {
        EXTEN_CHECK(width.literal >= 1 && width.literal <= 64, "line ", line,
                    ": '", instr_name, "' builtin ", expr.name, " width ",
                    width.literal, " out of range 1..64");
      }
    }
  }
  for (const ExprPtr& arg : expr.args) validate_expr(*arg, line, instr_name);
}

/// Collects every symbol referenced by an instruction's semantics, both in
/// expressions and assignment targets.
ReferencedSymbols collect_instruction_refs(const InstructionDecl& decl) {
  ReferencedSymbols refs;
  for (const Assignment& stmt : decl.semantics) {
    if (stmt.value) collect_refs(*stmt.value, &refs);
    if (stmt.index) collect_refs(*stmt.index, &refs);
    switch (stmt.target) {
      case Assignment::Target::kState:
        refs.states.push_back(stmt.name);
        break;
      case Assignment::Target::kRegfileElem:
        refs.regfiles.push_back(stmt.name);
        break;
      case Assignment::Target::kRd:
        break;
    }
  }
  return refs;
}

void dedup(std::vector<std::string>* names) {
  std::sort(names->begin(), names->end());
  names->erase(std::unique(names->begin(), names->end()), names->end());
}

}  // namespace

const CustomInstruction& TieConfiguration::instruction(
    std::uint8_t func) const {
  EXTEN_CHECK(func < instructions_.size(),
              "illegal custom instruction: func ", unsigned{func},
              " not defined (configuration has ", instructions_.size(),
              " extensions)");
  return instructions_[func];
}

const CustomInstruction* TieConfiguration::find(std::string_view name) const {
  for (const CustomInstruction& ci : instructions_) {
    if (ci.name == name) return &ci;
  }
  return nullptr;
}

std::map<std::string, isa::CustomMnemonic, std::less<>>
TieConfiguration::assembler_mnemonics() const {
  std::map<std::string, isa::CustomMnemonic, std::less<>> out;
  for (const CustomInstruction& ci : instructions_) {
    isa::CustomMnemonic sig;
    sig.func = ci.func;
    sig.has_rd = ci.writes_rd;
    sig.has_rs1 = ci.reads_rs1;
    sig.has_rs2 = ci.reads_rs2;
    out[ci.name] = sig;
  }
  return out;
}

std::map<std::uint8_t, std::string> TieConfiguration::disassembler_mnemonics()
    const {
  std::map<std::uint8_t, std::string> out;
  for (const CustomInstruction& ci : instructions_) out[ci.func] = ci.name;
  return out;
}

TieState TieConfiguration::make_state() const {
  TieState state;
  for (const StateDecl& d : state_decls_) state.declare_state(d.name, d.width);
  for (const RegfileDecl& d : regfile_decls_) {
    state.declare_regfile(d.name, d.width, d.size);
  }
  return state;
}

std::uint32_t TieConfiguration::execute(std::uint8_t func, std::uint32_t rs1,
                                        std::uint32_t rs2,
                                        TieState* state) const {
  return execute(instruction(func), rs1, rs2, state);
}

std::uint32_t TieConfiguration::execute_reference(std::uint8_t func,
                                                  std::uint32_t rs1,
                                                  std::uint32_t rs2,
                                                  TieState* state) const {
  return execute_reference(instruction(func), rs1, rs2, state);
}

std::uint32_t TieConfiguration::execute_reference(const CustomInstruction& ci,
                                                  std::uint32_t rs1,
                                                  std::uint32_t rs2,
                                                  TieState* state) const {
  EvalContext ctx;
  ctx.rs1 = rs1;
  ctx.rs2 = rs2;
  ctx.state = state;
  ctx.tables = &tables_;
  tie::execute(ci.semantics, ctx);
  return ci.writes_rd ? ctx.rd : 0;
}

TieConfiguration TieConfiguration::compile(const TieSpec& spec) {
  obs::ScopedSpan span(obs::Category::kTie, "tie_compile");
  span.add_counter("instructions",
                   static_cast<std::uint64_t>(spec.instructions.size()));
  TieConfiguration config;

  // --- Custom state declarations ------------------------------------------
  std::set<std::string> state_names;
  std::set<std::string> regfile_names;
  std::set<std::string> table_names;

  for (const StateDecl& d : spec.states) {
    EXTEN_CHECK(d.width >= 1 && d.width <= 64, "line ", d.line, ": state '",
                d.name, "' width ", d.width, " out of range 1..64");
    EXTEN_CHECK(state_names.insert(d.name).second, "line ", d.line,
                ": duplicate state '", d.name, "'");
    config.state_decls_.push_back(d);
  }
  for (const RegfileDecl& d : spec.regfiles) {
    EXTEN_CHECK(d.width >= 1 && d.width <= 64, "line ", d.line, ": regfile '",
                d.name, "' width ", d.width, " out of range 1..64");
    EXTEN_CHECK(d.size >= 1 && d.size <= 256, "line ", d.line, ": regfile '",
                d.name, "' size ", d.size, " out of range 1..256");
    EXTEN_CHECK(!state_names.count(d.name) && regfile_names.insert(d.name).second,
                "line ", d.line, ": duplicate symbol '", d.name, "'");
    config.regfile_decls_.push_back(d);
  }
  for (const TableDecl& d : spec.tables) {
    EXTEN_CHECK(d.width >= 1 && d.width <= 64, "line ", d.line, ": table '",
                d.name, "' width ", d.width, " out of range 1..64");
    EXTEN_CHECK(is_power_of_two(d.values.size()), "line ", d.line,
                ": table '", d.name, "' size ", d.values.size(),
                " must be a power of two");
    EXTEN_CHECK(!state_names.count(d.name) && !regfile_names.count(d.name) &&
                    table_names.insert(d.name).second,
                "line ", d.line, ": duplicate symbol '", d.name, "'");
    for (std::size_t i = 0; i < d.values.size(); ++i) {
      EXTEN_CHECK(d.values[i] == mask_to_width(d.values[i], d.width), "line ",
                  d.line, ": table '", d.name, "' value [", i, "] = ",
                  d.values[i], " does not fit in ", d.width, " bits");
    }
    TableData data;
    data.width = d.width;
    data.values = d.values;
    config.tables_.emplace(d.name, std::move(data));
  }

  // --- Instructions ---------------------------------------------------------
  EXTEN_CHECK(spec.instructions.size() <= 256,
              "too many custom instructions: ", spec.instructions.size(),
              " (max 256)");
  std::set<std::string> instr_names;

  for (const InstructionDecl& decl : spec.instructions) {
    EXTEN_CHECK(instr_names.insert(decl.name).second, "line ", decl.line,
                ": duplicate instruction '", decl.name, "'");
    EXTEN_CHECK(!isa::find_opcode(decl.name), "line ", decl.line,
                ": instruction '", decl.name,
                "' collides with a base-ISA mnemonic");
    for (std::string_view reserved : kReservedMnemonics) {
      EXTEN_CHECK(decl.name != reserved, "line ", decl.line,
                  ": instruction '", decl.name,
                  "' collides with an assembler pseudo-instruction");
    }
    EXTEN_CHECK(decl.latency >= 1 && decl.latency <= kMaxLatency, "line ",
                decl.line, ": instruction '", decl.name, "' latency ",
                decl.latency, " out of range 1..", kMaxLatency);
    EXTEN_CHECK(!decl.semantics.empty(), "line ", decl.line,
                ": instruction '", decl.name, "' has no semantics");
    for (const Assignment& stmt : decl.semantics) {
      if (stmt.value) validate_expr(*stmt.value, decl.line, decl.name);
      if (stmt.index) validate_expr(*stmt.index, decl.line, decl.name);
    }

    // Operand usage must match the semantics.
    ReferencedSymbols refs = collect_instruction_refs(decl);
    dedup(&refs.states);
    dedup(&refs.regfiles);
    dedup(&refs.tables);
    EXTEN_CHECK(!refs.rs1 || decl.reads_rs1, "line ", decl.line, ": '",
                decl.name, "' semantics read rs1 without 'reads rs1'");
    EXTEN_CHECK(!refs.rs2 || decl.reads_rs2, "line ", decl.line, ": '",
                decl.name, "' semantics read rs2 without 'reads rs2'");
    const bool assigns_rd =
        std::any_of(decl.semantics.begin(), decl.semantics.end(),
                    [](const Assignment& s) {
                      return s.target == Assignment::Target::kRd;
                    });
    EXTEN_CHECK(!assigns_rd || decl.writes_rd, "line ", decl.line, ": '",
                decl.name, "' semantics assign rd without 'writes rd'");
    EXTEN_CHECK(!decl.writes_rd || assigns_rd, "line ", decl.line, ": '",
                decl.name, "' declares 'writes rd' but never assigns rd");

    CustomInstruction ci;
    ci.name = decl.name;
    ci.func = static_cast<std::uint8_t>(config.instructions_.size());
    ci.latency = decl.latency;
    ci.reads_rs1 = decl.reads_rs1;
    ci.reads_rs2 = decl.reads_rs2;
    ci.writes_rd = decl.writes_rd;
    ci.isolated = decl.isolated;
    for (const Assignment& stmt : decl.semantics) {
      ci.semantics.push_back(stmt.clone());
    }

    // Explicit component uses.
    bool has_explicit_custreg = false;
    bool has_explicit_table = false;
    for (const ComponentUse& use : decl.uses) {
      EXTEN_CHECK(use.width >= 1 && use.width <= kMaxComponentWidth, "line ",
                  decl.line, ": '", decl.name, "' component ",
                  component_class_name(use.cls), " width ", use.width,
                  " out of range");
      EXTEN_CHECK(use.count >= 1 && use.count <= 64, "line ", decl.line,
                  ": '", decl.name, "' component count ", use.count,
                  " out of range 1..64");
      if (use.cls == ComponentClass::kTable) {
        EXTEN_CHECK(use.entries >= 2, "line ", decl.line, ": '", decl.name,
                    "' table component needs entries=N (>= 2)");
      }
      for (unsigned cycle : use.active_cycles) {
        EXTEN_CHECK(cycle < decl.latency, "line ", decl.line, ": '",
                    decl.name, "' component active cycle ", cycle,
                    " >= latency ", decl.latency);
      }
      has_explicit_custreg |= use.cls == ComponentClass::kCustomReg;
      has_explicit_table |= use.cls == ComponentClass::kTable;
      ci.components.push_back(use);
    }

    // Implicit components derived from semantics (unless explicitly
    // declared): custom-register storage for every state/regfile touched,
    // and a table block per distinct table referenced.
    if (!has_explicit_custreg) {
      for (const std::string& name : refs.states) {
        auto it = std::find_if(spec.states.begin(), spec.states.end(),
                               [&](const StateDecl& s) { return s.name == name; });
        EXTEN_CHECK(it != spec.states.end(), "line ", decl.line, ": '",
                    decl.name, "' references undeclared state '", name, "'");
        ComponentUse use;
        use.cls = ComponentClass::kCustomReg;
        use.width = it->width;
        ci.components.push_back(use);
      }
      for (const std::string& name : refs.regfiles) {
        auto it = std::find_if(
            spec.regfiles.begin(), spec.regfiles.end(),
            [&](const RegfileDecl& r) { return r.name == name; });
        EXTEN_CHECK(it != spec.regfiles.end(), "line ", decl.line, ": '",
                    decl.name, "' references undeclared regfile '", name, "'");
        ComponentUse use;
        use.cls = ComponentClass::kCustomReg;
        use.width = it->width;
        ci.components.push_back(use);
      }
    }
    if (!has_explicit_table) {
      for (const std::string& name : refs.tables) {
        auto it = std::find_if(spec.tables.begin(), spec.tables.end(),
                               [&](const TableDecl& t) { return t.name == name; });
        EXTEN_CHECK(it != spec.tables.end(), "line ", decl.line, ": '",
                    decl.name, "' references undeclared table '", name, "'");
        ComponentUse use;
        use.cls = ComponentClass::kTable;
        use.width = it->width;
        use.entries = static_cast<unsigned>(it->values.size());
        ci.components.push_back(use);
      }
    }
    EXTEN_CHECK(!ci.components.empty(), "line ", decl.line, ": instruction '",
                decl.name,
                "' has no datapath components (add 'use' declarations)");

    // Weight vectors.
    for (const ComponentUse& use : ci.components) {
      const auto cls = static_cast<std::size_t>(use.cls);
      const double unit = use.total_complexity();
      ci.execution_weights[cls] +=
          unit * static_cast<double>(use.cycles_active(ci.latency));
      const bool in_input_stage =
          use.active_cycles.empty() ||
          std::find(use.active_cycles.begin(), use.active_cycles.end(), 0u) !=
              use.active_cycles.end();
      if (in_input_stage) ci.input_stage_weights[cls] += unit;
      ci.total_complexity += unit;
    }

    if (!ci.isolated) {
      for (std::size_t c = 0; c < kComponentClassCount; ++c) {
        config.shared_bus_weights_[c] += ci.input_stage_weights[c];
      }
    }
    config.instructions_.push_back(std::move(ci));
  }

  // --- Bytecode lowering ----------------------------------------------------
  // Slots are declaration order, which is exactly the order make_state()
  // declares them in the per-run TieState.
  BytecodeSymbols symbols;
  for (std::size_t i = 0; i < config.state_decls_.size(); ++i) {
    symbols.state_slots.emplace(config.state_decls_[i].name,
                                static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < config.regfile_decls_.size(); ++i) {
    symbols.regfile_slots.emplace(config.regfile_decls_[i].name,
                                  static_cast<std::uint32_t>(i));
  }
  symbols.tables = &config.tables_;
  for (CustomInstruction& ci : config.instructions_) {
    ci.bytecode = BytecodeProgram::compile(ci.semantics, symbols);
  }

  return config;
}

TieConfiguration compile_tie_source(std::string_view source) {
  return TieConfiguration::compile(parse_tie(source));
}

}  // namespace exten::tie
