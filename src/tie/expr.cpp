#include "tie/expr.h"

#include <bit>

#include "tie/state.h"
#include "util/error.h"

namespace exten::tie {

ExprPtr Expr::clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->literal = literal;
  copy->name = name;
  copy->op = op;
  copy->args.reserve(args.size());
  for (const ExprPtr& arg : args) copy->args.push_back(arg->clone());
  return copy;
}

Assignment Assignment::clone() const {
  Assignment copy;
  copy.target = target;
  copy.name = name;
  copy.index = index ? index->clone() : nullptr;
  copy.value = value ? value->clone() : nullptr;
  return copy;
}

std::uint64_t sign_extend64(std::uint64_t value, unsigned bits) {
  EXTEN_CHECK(bits >= 1 && bits <= 64, "sext width ", bits,
              " out of range 1..64");
  if (bits == 64) return value;
  const std::uint64_t sign = std::uint64_t{1} << (bits - 1);
  value &= (std::uint64_t{1} << bits) - 1;
  return (value ^ sign) - sign;
}

namespace {

std::uint64_t eval_call(const Expr& expr, EvalContext& ctx) {
  const auto argc = expr.args.size();
  auto arg = [&](std::size_t i) { return eval(*expr.args[i], ctx); };
  auto need = [&](std::size_t n) {
    EXTEN_CHECK(argc == n, "builtin ", expr.name, " expects ", n,
                " argument(s), got ", argc);
  };

  if (expr.name == "sext") {
    need(2);
    return sign_extend64(arg(0), static_cast<unsigned>(arg(1)));
  }
  if (expr.name == "zext") {
    need(2);
    return mask_to_width(arg(0), static_cast<unsigned>(arg(1)));
  }
  if (expr.name == "sel") {
    need(3);
    return arg(0) != 0 ? arg(1) : arg(2);
  }
  if (expr.name == "min") {
    need(2);
    const std::uint64_t a = arg(0), b = arg(1);
    return a < b ? a : b;
  }
  if (expr.name == "max") {
    need(2);
    const std::uint64_t a = arg(0), b = arg(1);
    return a > b ? a : b;
  }
  if (expr.name == "mins") {
    need(2);
    const auto a = static_cast<std::int64_t>(arg(0));
    const auto b = static_cast<std::int64_t>(arg(1));
    return static_cast<std::uint64_t>(a < b ? a : b);
  }
  if (expr.name == "maxs") {
    need(2);
    const auto a = static_cast<std::int64_t>(arg(0));
    const auto b = static_cast<std::int64_t>(arg(1));
    return static_cast<std::uint64_t>(a > b ? a : b);
  }
  if (expr.name == "abs") {
    need(1);
    const auto a = static_cast<std::int64_t>(arg(0));
    return static_cast<std::uint64_t>(a < 0 ? -a : a);
  }
  if (expr.name == "popcount") {
    need(1);
    return static_cast<std::uint64_t>(std::popcount(arg(0)));
  }
  if (expr.name == "asr") {
    need(3);
    const unsigned width = static_cast<unsigned>(arg(2));
    const std::int64_t v =
        static_cast<std::int64_t>(sign_extend64(arg(0), width));
    const unsigned sh = static_cast<unsigned>(arg(1)) & 63;
    return static_cast<std::uint64_t>(v >> sh);
  }
  throw Error("unknown builtin function '", expr.name, "'");
}

std::uint64_t eval_binary(const Expr& expr, EvalContext& ctx) {
  const std::uint64_t a = eval(*expr.args[0], ctx);
  const std::uint64_t b = eval(*expr.args[1], ctx);
  const std::string& op = expr.op;
  if (op == "+") return a + b;
  if (op == "-") return a - b;
  if (op == "*") return a * b;
  if (op == "&") return a & b;
  if (op == "|") return a | b;
  if (op == "^") return a ^ b;
  if (op == "<<") return b >= 64 ? 0 : a << b;
  if (op == ">>") return b >= 64 ? 0 : a >> b;
  if (op == "==") return a == b ? 1 : 0;
  if (op == "!=") return a != b ? 1 : 0;
  if (op == "<") return a < b ? 1 : 0;
  if (op == "<=") return a <= b ? 1 : 0;
  if (op == ">") return a > b ? 1 : 0;
  if (op == ">=") return a >= b ? 1 : 0;
  throw Error("unknown binary operator '", op, "'");
}

}  // namespace

std::uint64_t eval(const Expr& expr, EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kRs1:
      return ctx.rs1;
    case ExprKind::kRs2:
      return ctx.rs2;
    case ExprKind::kState:
      EXTEN_CHECK(ctx.state != nullptr, "no TIE state bound");
      return ctx.state->read_state(expr.name);
    case ExprKind::kRegfile: {
      EXTEN_CHECK(ctx.state != nullptr, "no TIE state bound");
      EXTEN_CHECK(expr.args.size() == 1, "regfile ref needs an index");
      const std::uint64_t index = eval(*expr.args[0], ctx);
      return ctx.state->read_regfile(expr.name, index);
    }
    case ExprKind::kTable: {
      EXTEN_CHECK(ctx.tables != nullptr, "no TIE tables bound");
      auto it = ctx.tables->find(expr.name);
      EXTEN_CHECK(it != ctx.tables->end(), "unknown table '", expr.name, "'");
      EXTEN_CHECK(expr.args.size() == 1, "table ref needs an index");
      return it->second.lookup(eval(*expr.args[0], ctx));
    }
    case ExprKind::kUnary: {
      EXTEN_CHECK(expr.args.size() == 1, "unary op needs one operand");
      const std::uint64_t v = eval(*expr.args[0], ctx);
      if (expr.op == "~") return ~v;
      if (expr.op == "-") return ~v + 1;
      throw Error("unknown unary operator '", expr.op, "'");
    }
    case ExprKind::kBinary:
      EXTEN_CHECK(expr.args.size() == 2, "binary op needs two operands");
      return eval_binary(expr, ctx);
    case ExprKind::kCall:
      return eval_call(expr, ctx);
  }
  throw Error("corrupt expression node");
}

void execute(const std::vector<Assignment>& body, EvalContext& ctx) {
  for (const Assignment& stmt : body) {
    EXTEN_CHECK(stmt.value != nullptr, "assignment without value");
    const std::uint64_t value = eval(*stmt.value, ctx);
    switch (stmt.target) {
      case Assignment::Target::kRd:
        ctx.rd = static_cast<std::uint32_t>(value);
        break;
      case Assignment::Target::kState:
        EXTEN_CHECK(ctx.state != nullptr, "no TIE state bound");
        ctx.state->write_state(stmt.name, value);
        break;
      case Assignment::Target::kRegfileElem: {
        EXTEN_CHECK(ctx.state != nullptr, "no TIE state bound");
        EXTEN_CHECK(stmt.index != nullptr, "regfile assignment needs index");
        const std::uint64_t index = eval(*stmt.index, ctx);
        ctx.state->write_regfile(stmt.name, index, value);
        break;
      }
    }
  }
}

void collect_refs(const Expr& expr, ReferencedSymbols* out) {
  switch (expr.kind) {
    case ExprKind::kRs1:
      out->rs1 = true;
      break;
    case ExprKind::kRs2:
      out->rs2 = true;
      break;
    case ExprKind::kState:
      out->states.push_back(expr.name);
      break;
    case ExprKind::kRegfile:
      out->regfiles.push_back(expr.name);
      break;
    case ExprKind::kTable:
      out->tables.push_back(expr.name);
      break;
    default:
      break;
  }
  for (const ExprPtr& arg : expr.args) collect_refs(*arg, out);
}

}  // namespace exten::tie
