#include "tie/state.h"

#include "util/error.h"

namespace exten::tie {

void TieState::declare_state(const std::string& name, unsigned width) {
  EXTEN_CHECK(width >= 1 && width <= 64, "state '", name, "': width ", width,
              " out of range 1..64");
  EXTEN_CHECK(!has_state(name) && !has_regfile(name), "duplicate TIE symbol '",
              name, "'");
  state_index_.emplace(name, scalars_.size());
  scalars_.push_back(Scalar{width, 0});
}

void TieState::declare_regfile(const std::string& name, unsigned width,
                               unsigned size) {
  EXTEN_CHECK(width >= 1 && width <= 64, "regfile '", name, "': width ",
              width, " out of range 1..64");
  EXTEN_CHECK(size >= 1 && size <= 256, "regfile '", name, "': size ", size,
              " out of range 1..256");
  EXTEN_CHECK(!has_state(name) && !has_regfile(name), "duplicate TIE symbol '",
              name, "'");
  regfile_index_.emplace(name, files_.size());
  files_.push_back(RegFile{width, std::vector<std::uint64_t>(size, 0)});
}

std::size_t TieState::state_slot(const std::string& name) const {
  auto it = state_index_.find(name);
  EXTEN_CHECK(it != state_index_.end(), "unknown TIE state '", name, "'");
  return it->second;
}

std::size_t TieState::regfile_slot(const std::string& name) const {
  auto it = regfile_index_.find(name);
  EXTEN_CHECK(it != regfile_index_.end(), "unknown TIE regfile '", name, "'");
  return it->second;
}

const TieState::Scalar& TieState::scalar(const std::string& name) const {
  return scalars_[state_slot(name)];
}

const TieState::RegFile& TieState::file(const std::string& name) const {
  return files_[regfile_slot(name)];
}

std::uint64_t TieState::read_state(const std::string& name) const {
  const Scalar& s = scalar(name);
  return mask(s.value, s.width);
}

void TieState::write_state(const std::string& name, std::uint64_t value) {
  write_state_slot(state_slot(name), value);
}

std::uint64_t TieState::read_regfile(const std::string& name,
                                     std::uint64_t index) const {
  const RegFile& f = file(name);
  return f.regs[static_cast<std::size_t>(index) % f.regs.size()];
}

void TieState::write_regfile(const std::string& name, std::uint64_t index,
                             std::uint64_t value) {
  write_regfile_slot(regfile_slot(name), index, value);
}

bool TieState::has_state(const std::string& name) const {
  return state_index_.count(name) != 0;
}

bool TieState::has_regfile(const std::string& name) const {
  return regfile_index_.count(name) != 0;
}

unsigned TieState::state_width(const std::string& name) const {
  return scalar(name).width;
}

unsigned TieState::regfile_width(const std::string& name) const {
  return file(name).width;
}

unsigned TieState::regfile_size(const std::string& name) const {
  return static_cast<unsigned>(file(name).regs.size());
}

void TieState::reset() {
  for (Scalar& s : scalars_) s.value = 0;
  for (RegFile& f : files_) {
    for (auto& r : f.regs) r = 0;
  }
}

}  // namespace exten::tie
