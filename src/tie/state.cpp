#include "tie/state.h"

#include "tie/expr.h"
#include "util/error.h"

namespace exten::tie {

void TieState::declare_state(const std::string& name, unsigned width) {
  EXTEN_CHECK(width >= 1 && width <= 64, "state '", name, "': width ", width,
              " out of range 1..64");
  EXTEN_CHECK(!has_state(name) && !has_regfile(name), "duplicate TIE symbol '",
              name, "'");
  states_.emplace(name, Scalar{width, 0});
}

void TieState::declare_regfile(const std::string& name, unsigned width,
                               unsigned size) {
  EXTEN_CHECK(width >= 1 && width <= 64, "regfile '", name, "': width ",
              width, " out of range 1..64");
  EXTEN_CHECK(size >= 1 && size <= 256, "regfile '", name, "': size ", size,
              " out of range 1..256");
  EXTEN_CHECK(!has_state(name) && !has_regfile(name), "duplicate TIE symbol '",
              name, "'");
  regfiles_.emplace(name, RegFile{width, std::vector<std::uint64_t>(size, 0)});
}

const TieState::Scalar& TieState::scalar(const std::string& name) const {
  auto it = states_.find(name);
  EXTEN_CHECK(it != states_.end(), "unknown TIE state '", name, "'");
  return it->second;
}

const TieState::RegFile& TieState::file(const std::string& name) const {
  auto it = regfiles_.find(name);
  EXTEN_CHECK(it != regfiles_.end(), "unknown TIE regfile '", name, "'");
  return it->second;
}

std::uint64_t TieState::read_state(const std::string& name) const {
  const Scalar& s = scalar(name);
  return mask_to_width(s.value, s.width);
}

void TieState::write_state(const std::string& name, std::uint64_t value) {
  auto it = states_.find(name);
  EXTEN_CHECK(it != states_.end(), "unknown TIE state '", name, "'");
  it->second.value = mask_to_width(value, it->second.width);
}

std::uint64_t TieState::read_regfile(const std::string& name,
                                     std::uint64_t index) const {
  const RegFile& f = file(name);
  return f.regs[static_cast<std::size_t>(index) % f.regs.size()];
}

void TieState::write_regfile(const std::string& name, std::uint64_t index,
                             std::uint64_t value) {
  auto it = regfiles_.find(name);
  EXTEN_CHECK(it != regfiles_.end(), "unknown TIE regfile '", name, "'");
  RegFile& f = it->second;
  f.regs[static_cast<std::size_t>(index) % f.regs.size()] =
      mask_to_width(value, f.width);
}

bool TieState::has_state(const std::string& name) const {
  return states_.count(name) != 0;
}

bool TieState::has_regfile(const std::string& name) const {
  return regfiles_.count(name) != 0;
}

unsigned TieState::state_width(const std::string& name) const {
  return scalar(name).width;
}

unsigned TieState::regfile_width(const std::string& name) const {
  return file(name).width;
}

unsigned TieState::regfile_size(const std::string& name) const {
  return static_cast<unsigned>(file(name).regs.size());
}

void TieState::reset() {
  for (auto& [name, s] : states_) s.value = 0;
  for (auto& [name, f] : regfiles_) {
    for (auto& r : f.regs) r = 0;
  }
}

}  // namespace exten::tie
