#include "explore/explore.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace exten::explore {

const Evaluation& ExploreResult::best() const {
  EXTEN_CHECK(!ranked.empty(), "empty exploration result");
  return ranked.front();
}

ExploreResult rank_candidates(std::span<const Candidate> candidates,
                              const model::EnergyMacroModel& macro_model,
                              Objective objective,
                              const sim::ProcessorConfig& processor) {
  service::BatchEstimator estimator(macro_model);
  return rank_candidates(candidates, estimator, objective, processor);
}

ExploreResult rank_candidates(std::span<const Candidate> candidates,
                              service::BatchEstimator& estimator,
                              Objective objective,
                              const sim::ProcessorConfig& processor) {
  EXTEN_CHECK(!candidates.empty(), "no candidates to rank");

  std::vector<service::BatchJob> jobs;
  jobs.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    jobs.push_back({candidate.name, candidate.program, processor});
  }
  const service::BatchResult batch = estimator.estimate(jobs);

  ExploreResult result;
  result.objective = objective;
  result.ranked.reserve(candidates.size());
  // Results arrive in job order, so the ranking below is bit-identical to
  // a serial evaluation. A faulting candidate fails the whole ranking
  // (the historical contract); the batch itself is unaffected.
  for (const service::JobResult& job : batch.results) {
    if (!job.ok) throw Error("candidate '", job.name, "': ", job.error);
    Evaluation eval;
    eval.name = job.name;
    eval.energy_pj = job.estimate.energy_pj;
    eval.cycles = job.estimate.stats.cycles;
    eval.edp = job.estimate.energy_pj * 1e-6 *
               (static_cast<double>(job.estimate.stats.cycles) * 1e-6);
    eval.elapsed_seconds = job.estimate.elapsed_seconds;
    result.ranked.push_back(std::move(eval));
  }

  // Pareto frontier on (energy, cycles): dominated iff some other point is
  // no worse in both dimensions and strictly better in one.
  for (Evaluation& a : result.ranked) {
    a.pareto_optimal = std::none_of(
        result.ranked.begin(), result.ranked.end(), [&](const Evaluation& b) {
          const bool no_worse =
              b.energy_pj <= a.energy_pj && b.cycles <= a.cycles;
          const bool strictly_better =
              b.energy_pj < a.energy_pj || b.cycles < a.cycles;
          return &a != &b && no_worse && strictly_better;
        });
  }

  // Equal-objective candidates rank in name order: the ranking must not
  // depend on manifest (or generation) order, or two runs of the same
  // design space could disagree on "the best" candidate.
  const auto objective_value = [objective](const Evaluation& e) {
    switch (objective) {
      case Objective::kEnergy: return e.energy_pj;
      case Objective::kDelay: return static_cast<double>(e.cycles);
      case Objective::kEdp: return e.edp;
    }
    return e.edp;
  };
  std::stable_sort(result.ranked.begin(), result.ranked.end(),
                   [&objective_value](const Evaluation& a,
                                      const Evaluation& b) {
                     const double va = objective_value(a);
                     const double vb = objective_value(b);
                     if (va != vb) return va < vb;
                     return a.name < b.name;
                   });
  return result;
}

AsciiTable to_table(const ExploreResult& result) {
  AsciiTable table(
      {"Candidate", "Energy (uJ)", "Cycles", "EDP (uJ*Mcyc)", "Pareto"});
  for (const Evaluation& eval : result.ranked) {
    table.add_row({eval.name, format_fixed(eval.energy_uj(), 2),
                   with_commas(eval.cycles), format_fixed(eval.edp, 3),
                   eval.pareto_optimal ? "*" : ""});
  }
  return table;
}

}  // namespace exten::explore
