#pragma once

// Design-space exploration on top of the macro-model — the use the paper
// builds toward (§I: evaluating "energy-performance trade-offs among
// different candidate custom instructions" inside an ASIP design cycle).
//
// Given a set of candidates (the same application compiled against
// different instruction-set extensions), every candidate is evaluated with
// the *fast* path only (ISS + resource-usage analysis + macro-model dot
// product), ranked by the chosen objective, and marked Pareto-optimal on
// the energy/delay frontier. Nothing is synthesized and the RTL-level
// estimator never runs.

#include <span>
#include <string>
#include <vector>

#include "model/estimate.h"
#include "model/macro_model.h"
#include "model/test_program.h"
#include "service/batch_estimator.h"
#include "sim/config.h"
#include "util/table.h"

namespace exten::explore {

/// One design point: an application bundled with a candidate extension.
struct Candidate {
  std::string name;
  model::TestProgram program;
};

/// Ranking objective.
enum class Objective {
  kEnergy,  ///< total energy
  kDelay,   ///< total cycles
  kEdp,     ///< energy-delay product
};

/// Evaluation of one candidate.
struct Evaluation {
  std::string name;
  double energy_pj = 0.0;
  std::uint64_t cycles = 0;
  /// Energy-delay product in uJ * Mcycles.
  double edp = 0.0;
  /// On the energy/delay Pareto frontier of the evaluated set.
  bool pareto_optimal = false;
  /// Wall-clock seconds the evaluation itself took (ISS + profiling +
  /// macro-model evaluation), as reported by EnergyEstimate.
  double elapsed_seconds = 0.0;

  double energy_uj() const { return energy_pj * 1e-6; }
};

struct ExploreResult {
  /// Sorted by the requested objective, best first.
  std::vector<Evaluation> ranked;
  Objective objective = Objective::kEdp;

  /// The winner (ranked.front()); throws exten::Error when empty.
  const Evaluation& best() const;
};

/// Evaluates and ranks every candidate with the macro-model fast path.
/// Candidates are evaluated in parallel on a transient service::
/// BatchEstimator (hardware-concurrency threads); the ranking is
/// identical to a serial evaluation — result order never depends on
/// scheduling. Throws exten::Error when `candidates` is empty or a
/// program faults.
ExploreResult rank_candidates(std::span<const Candidate> candidates,
                              const model::EnergyMacroModel& macro_model,
                              Objective objective = Objective::kEdp,
                              const sim::ProcessorConfig& processor = {});

/// Same, on a caller-provided estimator — reuses its thread pool and its
/// content-addressed cache across calls, so re-ranking overlapping
/// candidate sets (the DSE inner loop) skips redundant ISS runs.
ExploreResult rank_candidates(std::span<const Candidate> candidates,
                              service::BatchEstimator& estimator,
                              Objective objective = Objective::kEdp,
                              const sim::ProcessorConfig& processor = {});

/// Renders a ranked result (name, energy, cycles, EDP, Pareto mark).
AsciiTable to_table(const ExploreResult& result);

}  // namespace exten::explore
