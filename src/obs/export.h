#pragma once

// Span exporters: Chrome trace-event JSON (loadable in chrome://tracing
// and https://ui.perfetto.dev) and a compact aggregated per-stage latency
// summary for terminal reports.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace exten::obs {

/// Serializes spans as a Chrome trace-event file: one complete ("ph":"X")
/// event per span with microsecond timestamps, the category as "cat", the
/// correlation id and counters under "args", plus thread-name metadata
/// events. Deterministic for a given span list.
std::string chrome_trace_json(const std::vector<Span>& spans);

/// Aggregate of every span sharing one name.
struct StageStats {
  std::string name;
  Category category = Category::kTool;
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;

  double mean_seconds() const {
    return count == 0 ? 0.0 : total_seconds / static_cast<double>(count);
  }
};

/// Groups spans by name (category order, then by total time descending).
std::vector<StageStats> aggregate_stages(const std::vector<Span>& spans);

/// Renders the aggregate as an ASCII table (ends with '\n'; empty string
/// for an empty aggregate).
std::string stage_summary_table(const std::vector<StageStats>& stages);

}  // namespace exten::obs
