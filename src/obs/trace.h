#pragma once

// Low-overhead cross-layer tracing: thread-local fixed-capacity span ring
// buffers with a lock-free publish path, an RAII ScopedSpan, and a global
// enabled flag that makes the whole subsystem ~free when off.
//
// Design (docs/observability.md):
//  - A Span is a POD record: static-storage name, category, correlation id
//    (request/job id), nanosecond start/duration from one process-wide
//    steady_clock anchor, and up to two named counters. No allocation
//    happens anywhere on the emit path.
//  - Each emitting thread owns one Ring (registered with the Tracer on
//    first emit). The owner publishes spans through a per-slot seqlock
//    (odd/even sequence + relaxed atomic words), so snapshot() from any
//    other thread never blocks a writer and never observes a torn span —
//    a slot overwritten mid-read is detected and skipped.
//  - When tracing is disabled (the default), ScopedSpan's constructor is a
//    single relaxed atomic load; nothing else runs and nothing allocates
//    (pinned by tests/test_obs.cpp).
//
// Thread safety: everything here is safe to call from any thread.
// set_enabled / clear are for a coordinating thread (tool startup, the
// trace endpoint); emits racing a clear() are benign (the span lands or
// is dropped, never torn).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace exten::obs {

/// Which layer a span belongs to (the paper's per-component attribution,
/// lifted to the serving stack).
enum class Category : std::uint8_t {
  kServer,   ///< net::HttpServer event loop (accept/parse/route/respond)
  kService,  ///< service::BatchEstimator (enqueue/queue_wait/cache/evaluate)
  kEngine,   ///< sim::Cpu (predecode, run)
  kTie,      ///< tie compile + aggregated custom-instruction execution
  kTool,     ///< CLI-level phases (load, report)
};
inline constexpr std::size_t kNumCategories = 5;

const char* category_name(Category category);

/// One completed span. `name` and the counter names must point to
/// static-storage strings (string literals): spans are POD and outlive
/// the code region that emitted them.
struct Span {
  const char* name = nullptr;
  Category category = Category::kTool;
  /// Tracer-assigned emitting-thread index (1-based, registration order).
  std::uint32_t thread = 0;
  /// Nesting depth on the emitting thread at emission time.
  std::uint32_t depth = 0;
  /// Correlation id (request/job id); 0 = none.
  std::uint64_t id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  const char* counter_name[2] = {nullptr, nullptr};
  std::uint64_t counter_value[2] = {0, 0};

  double start_seconds() const { return static_cast<double>(start_ns) * 1e-9; }
  double dur_seconds() const { return static_cast<double>(dur_ns) * 1e-9; }
  std::uint64_t end_ns() const { return start_ns + dur_ns; }
};

namespace detail {
/// Global enabled flag; relaxed loads on every hot path.
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

class Tracer {
 public:
  static Tracer& instance();

  static bool enabled() {
    return detail::g_enabled.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on);

  /// Spans each thread's ring can hold before overwriting the oldest.
  /// Applies to rings created afterwards (existing rings keep their size).
  void set_thread_capacity(std::size_t spans);

  /// Monotonic correlation ids (never 0).
  std::uint64_t next_id();

  /// Nanoseconds since the process-wide anchor.
  static std::uint64_t now_ns() {
    return to_ns(std::chrono::steady_clock::now());
  }
  /// Converts a caller-held steady_clock time to the tracer's timebase
  /// (clamped to 0 for times predating the anchor).
  static std::uint64_t to_ns(std::chrono::steady_clock::time_point t);

  /// Publishes a finished span to the calling thread's ring. Callers
  /// normally use ScopedSpan / emit_span; emit() itself does not check
  /// enabled().
  void emit(const Span& span);

  /// Consistent copy of every ring, sorted by (start_ns, depth). Never
  /// blocks writers; spans being overwritten during the read are skipped.
  std::vector<Span> snapshot() const;

  /// Spans lost to ring wraparound since the last clear().
  std::uint64_t dropped_spans() const;

  /// Empties every ring. Best-effort when writers are active; meant for
  /// between-run resets with tracing disabled.
  void clear();

 private:
  Tracer();
  struct Ring;
  Ring& thread_ring();

  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::size_t> thread_capacity_;
  mutable std::mutex rings_mu_;
  std::vector<std::shared_ptr<Ring>> rings_;

  friend class ScopedSpan;
};

/// The thread's current correlation id (set by ScopedId), 0 when none.
std::uint64_t current_id();

/// RAII correlation-id scope: spans created while alive default their id
/// to this value. Nests (restores the previous id on destruction). Cheap
/// enough to use unconditionally.
class ScopedId {
 public:
  explicit ScopedId(std::uint64_t id);
  ~ScopedId();
  ScopedId(const ScopedId&) = delete;
  ScopedId& operator=(const ScopedId&) = delete;

 private:
  std::uint64_t prev_;
};

/// RAII span: records start on construction, emits on destruction. When
/// tracing is disabled at construction the object is inert (and stays
/// inert even if tracing is enabled mid-scope).
class ScopedSpan {
 public:
  /// `id` of 0 inherits the thread's current_id().
  ScopedSpan(Category category, const char* name, std::uint64_t id = 0);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a counter (at most two; extras are ignored). `name` must be
  /// a static-storage string.
  void add_counter(const char* name, std::uint64_t value);

  bool armed() const { return armed_; }

 private:
  Span span_;
  bool armed_ = false;
};

/// Publishes a span whose start/duration were measured externally (e.g.
/// queue wait: enqueue timestamp captured on one thread, emitted by the
/// worker that dequeued the job). No-op when tracing is disabled. `id` of
/// 0 inherits current_id(); depth is the emitting thread's current depth.
void emit_span(Category category, const char* name, std::uint64_t id,
               std::uint64_t start_ns, std::uint64_t dur_ns,
               const char* counter_name = nullptr,
               std::uint64_t counter_value = 0);

}  // namespace exten::obs
