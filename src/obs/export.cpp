#include "obs/export.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/json.h"
#include "util/strings.h"
#include "util/table.h"

namespace exten::obs {

std::string chrome_trace_json(const std::vector<Span>& spans) {
  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", std::string_view("ms"));
  w.array_field("traceEvents");

  std::set<std::uint32_t> threads;
  for (const Span& span : spans) threads.insert(span.thread);
  for (std::uint32_t thread : threads) {
    w.element_object();
    w.field("ph", std::string_view("M"));
    w.field("name", std::string_view("thread_name"));
    w.field("pid", 1);
    w.field("tid", static_cast<int>(thread));
    w.object_field("args");
    w.field("name", std::string_view("xtc-thread-" + std::to_string(thread)));
    w.end_object();
    w.end_object();
  }

  for (const Span& span : spans) {
    w.element_object();
    w.field("ph", std::string_view("X"));
    w.field("name",
            std::string_view(span.name != nullptr ? span.name : "unnamed"));
    w.field("cat", std::string_view(category_name(span.category)));
    // Chrome trace timestamps are microseconds (fractions allowed).
    w.field("ts", static_cast<double>(span.start_ns) / 1000.0);
    w.field("dur", static_cast<double>(span.dur_ns) / 1000.0);
    w.field("pid", 1);
    w.field("tid", static_cast<int>(span.thread));
    w.object_field("args");
    if (span.id != 0) w.field("id", span.id);
    for (int c = 0; c < 2; ++c) {
      if (span.counter_name[c] != nullptr) {
        w.field(span.counter_name[c], span.counter_value[c]);
      }
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::vector<StageStats> aggregate_stages(const std::vector<Span>& spans) {
  std::map<std::string, StageStats> by_name;
  for (const Span& span : spans) {
    const std::string name = span.name != nullptr ? span.name : "unnamed";
    StageStats& stats = by_name[name];
    const double seconds = span.dur_seconds();
    if (stats.count == 0) {
      stats.name = name;
      stats.category = span.category;
      stats.min_seconds = seconds;
      stats.max_seconds = seconds;
    } else {
      stats.min_seconds = std::min(stats.min_seconds, seconds);
      stats.max_seconds = std::max(stats.max_seconds, seconds);
    }
    ++stats.count;
    stats.total_seconds += seconds;
  }
  std::vector<StageStats> stages;
  stages.reserve(by_name.size());
  for (auto& [name, stats] : by_name) stages.push_back(std::move(stats));
  std::sort(stages.begin(), stages.end(),
            [](const StageStats& a, const StageStats& b) {
              if (a.category != b.category) return a.category < b.category;
              return a.total_seconds > b.total_seconds;
            });
  return stages;
}

std::string stage_summary_table(const std::vector<StageStats>& stages) {
  if (stages.empty()) return std::string();
  AsciiTable table({"Stage", "Category", "Count", "Total (ms)", "Mean (us)",
                    "Min (us)", "Max (us)"});
  for (const StageStats& s : stages) {
    table.add_row({s.name, category_name(s.category), std::to_string(s.count),
                   format_fixed(s.total_seconds * 1e3, 3),
                   format_fixed(s.mean_seconds() * 1e6, 1),
                   format_fixed(s.min_seconds * 1e6, 1),
                   format_fixed(s.max_seconds * 1e6, 1)});
  }
  std::ostringstream out;
  table.print(out);
  return out.str();
}

}  // namespace exten::obs
