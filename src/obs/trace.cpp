#include "obs/trace.h"

#include <algorithm>

namespace exten::obs {

namespace {

/// Process-wide timebase anchor. Materialized eagerly by Tracer's
/// constructor so spans converted from caller-held time_points (e.g. a
/// connection's request_start) can never predate it by more than the
/// window between process start and first Tracer use; to_ns clamps the
/// remainder.
std::chrono::steady_clock::time_point anchor() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}

constexpr std::size_t kDefaultThreadCapacity = 16384;
constexpr std::size_t kSpanWords = 9;

thread_local std::uint64_t t_current_id = 0;
thread_local std::uint32_t t_depth = 0;

std::uint64_t ptr_word(const char* p) {
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p));
}
const char* word_ptr(std::uint64_t w) {
  return reinterpret_cast<const char*>(static_cast<std::uintptr_t>(w));
}

void pack_span(const Span& span, std::uint64_t (&w)[kSpanWords]) {
  w[0] = ptr_word(span.name);
  w[1] = static_cast<std::uint64_t>(span.category) |
         (static_cast<std::uint64_t>(span.depth) << 8) |
         (static_cast<std::uint64_t>(span.thread) << 40);
  w[2] = span.id;
  w[3] = span.start_ns;
  w[4] = span.dur_ns;
  w[5] = ptr_word(span.counter_name[0]);
  w[6] = span.counter_value[0];
  w[7] = ptr_word(span.counter_name[1]);
  w[8] = span.counter_value[1];
}

Span unpack_span(const std::uint64_t (&w)[kSpanWords]) {
  Span span;
  span.name = word_ptr(w[0]);
  span.category = static_cast<Category>(w[1] & 0xff);
  span.depth = static_cast<std::uint32_t>((w[1] >> 8) & 0xffffffffu);
  span.thread = static_cast<std::uint32_t>(w[1] >> 40);
  span.id = w[2];
  span.start_ns = w[3];
  span.dur_ns = w[4];
  span.counter_name[0] = word_ptr(w[5]);
  span.counter_value[0] = w[6];
  span.counter_name[1] = word_ptr(w[7]);
  span.counter_value[1] = w[8];
  return span;
}

}  // namespace

const char* category_name(Category category) {
  switch (category) {
    case Category::kServer: return "server";
    case Category::kService: return "service";
    case Category::kEngine: return "engine";
    case Category::kTie: return "tie";
    case Category::kTool: return "tool";
  }
  return "unknown";
}

/// One emitting thread's span storage. The owning thread is the only
/// writer; any thread may snapshot. Each slot is a seqlock: the writer
/// bumps `seq` to odd, stores the span as relaxed atomic words, then
/// stores seq+2 with release; a reader that observes an odd or changed
/// sequence discards the slot (see Boehm, "Can seqlocks get along with
/// programming language memory models?").
struct Tracer::Ring {
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[kSpanWords] = {};
  };

  Ring(std::size_t capacity_in, std::uint32_t thread_id_in)
      : capacity(capacity_in), thread_id(thread_id_in), slots(capacity_in) {}

  void push(const Span& span) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& slot = slots[h % capacity];
    const std::uint64_t s = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    std::uint64_t w[kSpanWords];
    pack_span(span, w);
    for (std::size_t i = 0; i < kSpanWords; ++i) {
      slot.words[i].store(w[i], std::memory_order_relaxed);
    }
    slot.seq.store(s + 2, std::memory_order_release);
    head.store(h + 1, std::memory_order_release);
  }

  void read_into(std::vector<Span>* out) const {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(h, capacity);
    for (std::uint64_t i = h - n; i < h; ++i) {
      const Slot& slot = slots[i % capacity];
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 & 1) continue;  // mid-write
      std::uint64_t w[kSpanWords];
      for (std::size_t j = 0; j < kSpanWords; ++j) {
        w[j] = slot.words[j].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
      out->push_back(unpack_span(w));
    }
  }

  std::atomic<std::uint64_t> head{0};
  const std::size_t capacity;
  const std::uint32_t thread_id;
  std::vector<Slot> slots;
};

Tracer::Tracer() : thread_capacity_(kDefaultThreadCapacity) {
  anchor();  // pin the timebase before any span exists
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_enabled(bool on) {
  if (on) anchor();
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void Tracer::set_thread_capacity(std::size_t spans) {
  thread_capacity_.store(std::max<std::size_t>(spans, 2),
                         std::memory_order_relaxed);
}

std::uint64_t Tracer::next_id() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Tracer::to_ns(std::chrono::steady_clock::time_point t) {
  const auto delta = t - anchor();
  if (delta.count() < 0) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(delta).count());
}

Tracer::Ring& Tracer::thread_ring() {
  // The shared_ptr keeps the ring alive in the registry after the thread
  // exits, so a snapshot can still export its spans.
  thread_local std::shared_ptr<Ring> ring = [this] {
    std::lock_guard<std::mutex> lock(rings_mu_);
    auto r = std::make_shared<Ring>(
        thread_capacity_.load(std::memory_order_relaxed),
        static_cast<std::uint32_t>(rings_.size() + 1));
    rings_.push_back(r);
    return r;
  }();
  return *ring;
}

void Tracer::emit(const Span& span) {
  Span stamped = span;
  Ring& ring = thread_ring();
  stamped.thread = ring.thread_id;
  ring.push(stamped);
}

std::vector<Span> Tracer::snapshot() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  std::vector<Span> spans;
  for (const auto& ring : rings) ring->read_into(&spans);
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) {
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     return a.depth < b.depth;
                   });
  return spans;
}

std::uint64_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    const std::uint64_t h = ring->head.load(std::memory_order_acquire);
    if (h > ring->capacity) dropped += h - ring->capacity;
  }
  return dropped;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    ring->head.store(0, std::memory_order_release);
  }
}

std::uint64_t current_id() { return t_current_id; }

ScopedId::ScopedId(std::uint64_t id) : prev_(t_current_id) {
  t_current_id = id;
}

ScopedId::~ScopedId() { t_current_id = prev_; }

ScopedSpan::ScopedSpan(Category category, const char* name, std::uint64_t id) {
  if (!Tracer::enabled()) return;
  armed_ = true;
  span_.name = name;
  span_.category = category;
  span_.id = id != 0 ? id : t_current_id;
  span_.depth = t_depth++;
  span_.start_ns = Tracer::now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  span_.dur_ns = Tracer::now_ns() - span_.start_ns;
  --t_depth;
  Tracer::instance().emit(span_);
}

void ScopedSpan::add_counter(const char* name, std::uint64_t value) {
  if (!armed_) return;
  for (int i = 0; i < 2; ++i) {
    if (span_.counter_name[i] == nullptr) {
      span_.counter_name[i] = name;
      span_.counter_value[i] = value;
      return;
    }
  }
}

void emit_span(Category category, const char* name, std::uint64_t id,
               std::uint64_t start_ns, std::uint64_t dur_ns,
               const char* counter_name, std::uint64_t counter_value) {
  if (!Tracer::enabled()) return;
  Span span;
  span.name = name;
  span.category = category;
  span.id = id != 0 ? id : t_current_id;
  span.depth = t_depth;
  span.start_ns = start_ns;
  span.dur_ns = dur_ns;
  if (counter_name != nullptr) {
    span.counter_name[0] = counter_name;
    span.counter_value[0] = counter_value;
  }
  Tracer::instance().emit(span);
}

}  // namespace exten::obs
