#include "sim/cache.h"

#include <bit>

#include "util/error.h"

namespace exten::sim {

Cache::Cache(const CacheConfig& config) : config_(config) {
  EXTEN_CHECK(std::has_single_bit(config.line_bytes) && config.line_bytes >= 4,
              "cache line size ", config.line_bytes,
              " must be a power of two >= 4");
  EXTEN_CHECK(config.ways >= 1, "cache needs at least one way");
  EXTEN_CHECK(config.size_bytes % (config.line_bytes * config.ways) == 0,
              "cache size ", config.size_bytes,
              " not divisible by line_bytes*ways");
  const std::uint32_t sets = config.num_sets();
  EXTEN_CHECK(sets >= 1 && std::has_single_bit(sets),
              "cache set count ", sets, " must be a power of two >= 1");
  set_shift_ = static_cast<std::uint32_t>(std::countr_zero(config.line_bytes));
  set_mask_ = sets - 1;
  tag_shift_ = set_shift_ + static_cast<std::uint32_t>(std::countr_zero(sets));
  lines_.resize(static_cast<std::size_t>(sets) * config.ways);
}

CacheOutcome Cache::lookup(std::uint32_t addr, bool allocate) {
  const std::uint32_t set = (addr >> set_shift_) & set_mask_;
  const std::uint32_t tag = addr >> tag_shift_;
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];

  Line* hit = nullptr;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      hit = &line;
      break;
    }
  }

  auto refresh = [&](Line& used) {
    // Age everyone in the set, then mark `used` freshest.
    for (std::uint32_t w = 0; w < config_.ways; ++w) ++base[w].lru;
    used.lru = 0;
  };

  if (hit != nullptr) {
    ++hits_;
    refresh(*hit);
    remember(addr >> set_shift_, set);
    return CacheOutcome::kHit;
  }
  ++misses_;
  if (allocate) {
    // Victim: first invalid way, otherwise the stalest (largest lru).
    Line* victim = base;
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      Line& line = base[w];
      if (!line.valid) {
        victim = &line;
        break;
      }
      if (line.lru > victim->lru) victim = &line;
    }
    victim->valid = true;
    victim->tag = tag;
    refresh(*victim);
    remember(addr >> set_shift_, set);
  }
  return CacheOutcome::kMiss;
}

void Cache::flush() {
  for (Line& line : lines_) line = Line{};
  for (std::uint32_t k = 0; k < kMemoEntries; ++k) hot_line_[k] = kNoLine;
}

}  // namespace exten::sim
