#pragma once

// Set-associative cache performance model with true-LRU replacement.
//
// This models hit/miss behaviour only (no data storage — the simulator's
// Memory is the backing store and is always coherent). The default
// configuration matches the paper's Xtensa T1040 setup: 4-way, 16 KiB,
// 32-byte lines, for both instruction and data caches.

#include <cstdint>
#include <vector>

namespace exten::sim {

/// Geometry of one cache.
struct CacheConfig {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 4;

  std::uint32_t num_sets() const {
    return size_bytes / (line_bytes * ways);
  }
};

/// Result of one cache access.
enum class CacheOutcome : std::uint8_t { kHit, kMiss };

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Looks up `addr`; on a miss the line is allocated (victim = LRU way).
  ///
  /// Hot-line memo: accesses to any of the last kMemoEntries distinct
  /// lines (sequential fetches within a 32-byte line, loop bodies spanning
  /// a few lines, load/store streams alternating between lines) skip the
  /// tag search and the LRU refresh entirely. This is exact, not
  /// approximate — the memo only ever holds lines that are currently
  /// most-recently-used within their own set (lookup() evicts a memo
  /// entry whenever another line of its set becomes MRU, and no two
  /// entries ever share a set), and re-refreshing a line that is already
  /// MRU of its set cannot change the relative LRU order, so every future
  /// victim choice is identical.
  CacheOutcome access(std::uint32_t addr) {
    const std::uint32_t line = addr >> set_shift_;
    if (line == hot_line_[0] || line == hot_line_[1] ||
        line == hot_line_[2] || line == hot_line_[3]) {
      ++hits_;
      return CacheOutcome::kHit;
    }
    return lookup(addr, /*allocate=*/true);
  }

  /// Looks up `addr` without allocating on miss (write-around stores).
  /// A hit still refreshes LRU state.
  CacheOutcome probe(std::uint32_t addr) {
    const std::uint32_t line = addr >> set_shift_;
    if (line == hot_line_[0] || line == hot_line_[1] ||
        line == hot_line_[2] || line == hot_line_[3]) {
      ++hits_;
      return CacheOutcome::kHit;
    }
    return lookup(addr, /*allocate=*/false);
  }

  /// Counts `n` hits without touching tag or LRU state. Only valid when
  /// the caller has proven the accesses hit and were already MRU of their
  /// set — the threaded engine uses this for sequential fetches within one
  /// line, where the preceding access() made the line MRU and nothing else
  /// can have touched this cache since; the hits are credited in bulk at
  /// block (or run) granularity. Keeps hits() + misses() == accesses.
  void add_hits(std::uint64_t n) { hits_ += n; }

  /// Invalidates all lines.
  void flush();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  const CacheConfig& config() const { return config_; }

 private:
  struct Line {
    bool valid = false;
    std::uint32_t tag = 0;
    std::uint32_t lru = 0;  ///< lower = more recently used
  };

  /// Finds the way holding `tag` in `set`, or the LRU victim.
  CacheOutcome lookup(std::uint32_t addr, bool allocate);

  /// Records that `line` just became MRU of `set`: any memoized line of
  /// the same set is no longer safe to short-circuit, so it is displaced;
  /// otherwise the oldest memo entry is evicted.
  void remember(std::uint32_t line, std::uint32_t set) {
    std::uint32_t evict = kMemoEntries - 1;
    for (std::uint32_t k = 0; k < kMemoEntries; ++k) {
      if ((hot_line_[k] & set_mask_) == set) {
        evict = k;
        break;
      }
    }
    for (; evict > 0; --evict) hot_line_[evict] = hot_line_[evict - 1];
    hot_line_[0] = line;
  }

  static constexpr std::uint32_t kMemoEntries = 4;

  /// Sentinel for "no memoized line": line addresses are addr >>
  /// set_shift_ with set_shift_ >= 2, so they never reach 0xFFFFFFFF.
  static constexpr std::uint32_t kNoLine = 0xFFFFFFFFu;

  CacheConfig config_;
  std::uint32_t set_shift_ = 0;   ///< log2(line_bytes)
  std::uint32_t set_mask_ = 0;    ///< num_sets - 1
  std::uint32_t tag_shift_ = 0;   ///< log2(line_bytes * num_sets)
  std::uint32_t hot_line_[kMemoEntries] = {kNoLine, kNoLine, kNoLine,
                                           kNoLine};  ///< per-set MRU lines
  std::vector<Line> lines_;       ///< sets x ways, row-major
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace exten::sim
