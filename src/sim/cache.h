#pragma once

// Set-associative cache performance model with true-LRU replacement.
//
// This models hit/miss behaviour only (no data storage — the simulator's
// Memory is the backing store and is always coherent). The default
// configuration matches the paper's Xtensa T1040 setup: 4-way, 16 KiB,
// 32-byte lines, for both instruction and data caches.

#include <cstdint>
#include <vector>

namespace exten::sim {

/// Geometry of one cache.
struct CacheConfig {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 4;

  std::uint32_t num_sets() const {
    return size_bytes / (line_bytes * ways);
  }
};

/// Result of one cache access.
enum class CacheOutcome : std::uint8_t { kHit, kMiss };

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Looks up `addr`; on a miss the line is allocated (victim = LRU way).
  CacheOutcome access(std::uint32_t addr);

  /// Looks up `addr` without allocating on miss (write-around stores).
  /// A hit still refreshes LRU state.
  CacheOutcome probe(std::uint32_t addr);

  /// Invalidates all lines.
  void flush();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  const CacheConfig& config() const { return config_; }

 private:
  struct Line {
    bool valid = false;
    std::uint32_t tag = 0;
    std::uint32_t lru = 0;  ///< lower = more recently used
  };

  /// Finds the way holding `tag` in `set`, or the LRU victim.
  CacheOutcome lookup(std::uint32_t addr, bool allocate);

  CacheConfig config_;
  std::uint32_t set_shift_ = 0;   ///< log2(line_bytes)
  std::uint32_t set_mask_ = 0;    ///< num_sets - 1
  std::vector<Line> lines_;       ///< sets x ways, row-major
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace exten::sim
