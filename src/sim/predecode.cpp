#include "sim/predecode.h"

#include <algorithm>

#include "isa/isa.h"
#include "tie/compiler.h"
#include "util/error.h"

namespace exten::sim {

void PredecodeTable::decode_into(PredecodedInstr* entry, std::uint32_t word,
                                 const tie::TieConfiguration& tie) {
  isa::DecodedInstr d;
  try {
    d = isa::decode(word);
  } catch (const Error&) {
    // Undefined primary opcode: leave the entry illegal so execution of
    // this pc takes the reference path and raises the original fault.
    entry->status = PredecodedInstr::kIllegal;
    entry->custom = nullptr;
    return;
  }

  const isa::OpcodeInfo& info = isa::opcode_info(d.op);
  entry->instr = d;
  entry->cls = info.cls;
  entry->custom = nullptr;
  if (d.op == isa::Opcode::kCustom) {
    if (d.func >= tie.instructions().size()) {
      // Unassigned extension id: the reference path raises the
      // illegal-custom-instruction fault with the exact message.
      entry->status = PredecodedInstr::kIllegal;
      return;
    }
    const tie::CustomInstruction& ci = tie.instruction(d.func);
    entry->custom = &ci;
    entry->reads_rs1 = ci.reads_rs1;
    entry->reads_rs2 = ci.reads_rs2;
  } else {
    entry->reads_rs1 = info.reads_rs1;
    entry->reads_rs2 = info.reads_rs2;
  }
  entry->rs1_src = entry->reads_rs1 ? d.rs1 : 0;
  entry->rs2_src = entry->reads_rs2 ? d.rs2 : 0;
  entry->status = PredecodedInstr::kReady;
}

void PredecodeTable::build(const isa::ProgramImage& image,
                           const tie::TieConfiguration& tie) {
  clear();

  const isa::Segment* text = nullptr;
  for (const isa::Segment& segment : image.segments()) {
    if (image.entry_point() >= segment.base &&
        image.entry_point() < segment.end()) {
      text = &segment;
      break;
    }
  }
  if (text == nullptr || (text->base & 3u) != 0) return;

  const std::size_t words = text->bytes.size() / 4;
  if (words == 0) return;
  base_ = text->base;
  limit_ = static_cast<std::uint32_t>(words * 4);
  entries_.resize(words);
  block_at_.assign(words, -1);
  for (std::size_t i = 0; i < words; ++i) {
    const std::size_t off = i * 4;
    const std::uint32_t word =
        static_cast<std::uint32_t>(text->bytes[off]) |
        (static_cast<std::uint32_t>(text->bytes[off + 1]) << 8) |
        (static_cast<std::uint32_t>(text->bytes[off + 2]) << 16) |
        (static_cast<std::uint32_t>(text->bytes[off + 3]) << 24);
    decode_into(&entries_[i], word, tie);
  }
}

void PredecodeTable::clear() {
  base_ = 0;
  limit_ = 0;
  entries_.clear();
  block_at_.clear();
  blocks_.clear();
  free_blocks_.clear();
  pending_cycles_ = 0;
  pending_hits_ = 0;
  pending_class_.fill(0);
}

Superblock* PredecodeTable::build_superblock(std::uint32_t word,
                                             const ProcessorConfig& config) {
  using isa::InstrClass;
  using isa::Opcode;
  if (entries_[word].status != PredecodedInstr::kReady) return nullptr;

  // Extent: consecutive kReady words, stopping after the first
  // *unconditional* transfer (jump/halt — which may only ever be the last
  // instruction of the block) or at the length cap. Conditional branches
  // stay inside the block — an extended basic block: not taken, execution
  // falls through to the next op; taken, the block exits early at that op
  // (the engine bumps exit_counts there). A full execution retires exactly
  // n_instr instructions; taken branches, store kills, and faults retire a
  // prefix.
  const auto total_words = static_cast<std::uint32_t>(entries_.size());
  std::uint32_t n = 0;
  bool ends_in_control_flow = false;
  while (word + n < total_words && n < Superblock::kMaxInstrs) {
    const PredecodedInstr& e = entries_[word + n];
    if (e.status != PredecodedInstr::kReady) break;
    ++n;
    if (e.cls == InstrClass::Jump || e.instr.op == Opcode::kHalt) {
      ends_in_control_flow = true;
      break;
    }
  }
  if (n == 0) return nullptr;

  std::uint32_t id;
  if (!free_blocks_.empty()) {
    id = free_blocks_.back();
    free_blocks_.pop_back();
  } else {
    id = static_cast<std::uint32_t>(blocks_.size());
    blocks_.emplace_back();
  }
  Superblock& b = blocks_[id];
  flush_exec_counts(b);  // recycled slot: don't leak old execution counts
  b.first_word = word;
  b.n_instr = n;
  b.n_elided = 0;
  b.n_ops = 0;
  b.static_cycles = 0;
  b.class_counts.fill(0);
  b.valid = true;

  // Fetch-timing classification. Elision is only exact for power-of-two
  // line sizes (the same assumption Cache's shift-based indexing makes);
  // anything else degrades to a probe per instruction.
  const std::uint32_t line_bytes = config.icache.line_bytes;
  const bool can_elide =
      line_bytes >= 4 && (line_bytes & (line_bytes - 1)) == 0;
  auto fetch_class = [&](std::uint32_t i) -> std::uint8_t {
    const std::uint32_t addr = base_ + (word + i) * 4;
    if (config.is_uncached(addr)) return kFetchUncached;
    if (i == 0 || !can_elide) return kFetchProbe;
    const std::uint32_t prev = addr - 4;
    if (config.is_uncached(prev)) return kFetchProbe;
    return (addr & ~(line_bytes - 1)) == (prev & ~(line_bytes - 1))
               ? kFetchElided
               : kFetchProbe;
  };

  std::uint32_t i = 0;
  while (i < n) {
    const PredecodedInstr& e = entries_[word + i];
    b.static_cycles += e.custom != nullptr ? e.custom->latency : 1;
    b.class_counts[static_cast<std::size_t>(e.cls)] += 1;

    SuperOp sop;
    sop.idx = word + i;
    sop.fetch = fetch_class(i);
    std::uint8_t kind = static_cast<std::uint8_t>(e.instr.op);

    if (i + 1 < n) {
      const PredecodedInstr& f = entries_[word + i + 1];
      const Opcode op1 = e.instr.op;
      const Opcode op2 = f.instr.op;
      const bool compare = op1 == Opcode::kSlt || op1 == Opcode::kSltu ||
                           op1 == Opcode::kSlti || op1 == Opcode::kSltiu;
      if (compare && (op2 == Opcode::kBeqz || op2 == Opcode::kBnez) &&
          e.instr.rd != isa::kZeroRegister && f.instr.rs1 == e.instr.rd) {
        // The branch tests exactly the register the compare just wrote, so
        // the fused handler can branch on the compare result directly
        // (rd = r0 is excluded: the write would be suppressed and the
        // branch would read a hardwired zero instead).
        kind = kSopFuseCmpBranch;
      } else if (op1 == Opcode::kLw && f.cls == InstrClass::Arithmetic &&
                 e.instr.rd != isa::kZeroRegister &&
                 (f.rs1_src == e.instr.rd || f.rs2_src == e.instr.rd)) {
        kind = kSopFuseLoadUse;
      } else if (op1 == Opcode::kCustom && op2 == Opcode::kCustom &&
                 e.custom != nullptr && f.custom != nullptr &&
                 !e.custom->bytecode.empty() && !f.custom->bytecode.empty()) {
        // Hot TIE sequence: back-to-back bytecode-backed customs run
        // through one handler that enters the bytecode VM directly
        // (TieConfiguration::execute_bytecode), skipping the per-call
        // empty() test of the generic path.
        kind = kSopFuseCustomPair;
      } else if (op1 == Opcode::kLw && op2 == Opcode::kLw) {
        kind = kSopFuseLwLw;
      } else if (op1 == Opcode::kLw && f.cls == InstrClass::Branch) {
        kind = kSopFuseLwBranch;
      } else if (op1 == Opcode::kSlli && op2 == Opcode::kAdd) {
        kind = kSopFuseSlliAdd;
      } else if (op1 == Opcode::kAddi && op2 == Opcode::kAddi) {
        kind = kSopFuseAddiAddi;
      } else if (op1 == Opcode::kAddi && op2 == Opcode::kSlli) {
        kind = kSopFuseAddiSlli;
      } else if (op1 == Opcode::kLui && op2 == Opcode::kOri) {
        kind = kSopFuseLuiOri;
      } else if (op1 == Opcode::kSub && op2 == Opcode::kJ) {
        kind = kSopFuseSubJ;
      } else if (op1 == Opcode::kAddi && op2 == Opcode::kJ) {
        kind = kSopFuseAddiJ;
      } else if (op1 == Opcode::kBeq && op2 == Opcode::kBltu) {
        kind = kSopFuseBeqBltu;
      } else if (op1 == Opcode::kBge && op2 == Opcode::kSlli) {
        kind = kSopFuseBgeSlli;
      } else if (op1 == Opcode::kBeqz && op2 == Opcode::kAddi) {
        kind = kSopFuseBeqzAddi;
      } else if (op1 == Opcode::kAdd && op2 == Opcode::kLw) {
        kind = kSopFuseAddLw;
      } else if (op1 == Opcode::kAdd && op2 == Opcode::kSw) {
        kind = kSopFuseAddSw;
      } else if (op1 == Opcode::kSw && op2 == Opcode::kAddi) {
        kind = kSopFuseSwAddi;
      } else if (op1 == Opcode::kSw && op2 == Opcode::kSw) {
        kind = kSopFuseSwSw;
      }
      if (kind >= isa::kOpcodeCount) {
        sop.fetch2 = fetch_class(i + 1);
        b.static_cycles += f.custom != nullptr ? f.custom->latency : 1;
        b.class_counts[static_cast<std::size_t>(f.cls)] += 1;
        b.n_elided += (sop.fetch == kFetchElided ? 1u : 0u) +
                      (sop.fetch2 == kFetchElided ? 1u : 0u);
        sop.kind = kind;
        b.ops[b.n_ops++] = sop;
        i += 2;
        continue;
      }
    }
    sop.kind = kind;
    b.n_elided += sop.fetch == kFetchElided ? 1u : 0u;
    b.ops[b.n_ops++] = sop;
    ++i;
  }

  // Blocks that end at a control transfer exit from that op's handler;
  // everything else (length cap, stale/illegal successor) falls off the
  // end through an explicit terminator.
  if (!ends_in_control_flow) {
    SuperOp sop;
    sop.kind = kSopBlockEnd;
    sop.idx = word + n;
    b.ops[b.n_ops++] = sop;
  }

  block_at_[word] = static_cast<std::int32_t>(id);
  return &b;
}

void PredecodeTable::invalidate_blocks_covering(std::uint32_t word) {
  // A block covering `word` must start within kMaxInstrs - 1 words before
  // it (blocks never exceed kMaxInstrs instructions).
  const std::uint32_t lo = word >= Superblock::kMaxInstrs - 1
                               ? word - (Superblock::kMaxInstrs - 1)
                               : 0;
  for (std::uint32_t start = lo; start <= word; ++start) {
    const std::int32_t id = block_at_[start];
    if (id < 0) continue;
    Superblock& b = blocks_[static_cast<std::size_t>(id)];
    if (start + b.n_instr > word) {
      flush_exec_counts(b);
      b.valid = false;
      block_at_[start] = -1;
      free_blocks_.push_back(static_cast<std::uint32_t>(id));
    }
  }
}

void PredecodeTable::drop_all_superblocks() {
  for (Superblock& b : blocks_) flush_exec_counts(b);
  blocks_.clear();
  free_blocks_.clear();
  std::fill(block_at_.begin(), block_at_.end(), -1);
}

void PredecodeTable::flush_exec_counts(Superblock& block) {
  if (block.exec_exits != 0) {
    // Expand the deferred taken-branch exits: one walk accumulates the
    // running prefix sums, and each op with a nonzero exit count
    // contributes count * prefix-through-that-op. The walk reads the
    // window entries the ops index, which still hold the pre-invalidation
    // decode: any store into the block's range lands here (via
    // invalidate_blocks_covering) before the entry can be refreshed.
    std::uint64_t cyc = 0;
    std::uint64_t eli = 0;
    std::array<std::uint64_t, isa::kInstrClassCount> cls{};
    for (std::uint32_t j = 0; j < block.n_ops; ++j) {
      const SuperOp& op = block.ops[j];
      if (op.kind == kSopBlockEnd) break;
      const PredecodedInstr& e = entries_[op.idx];
      cyc += e.custom != nullptr ? e.custom->latency : 1;
      cls[static_cast<std::size_t>(e.cls)] += 1;
      eli += op.fetch == kFetchElided ? 1u : 0u;
      if (op.kind >= isa::kOpcodeCount) {  // fused pair: second instruction
        const PredecodedInstr& f = entries_[op.idx + 1];
        cyc += f.custom != nullptr ? f.custom->latency : 1;
        cls[static_cast<std::size_t>(f.cls)] += 1;
        eli += op.fetch2 == kFetchElided ? 1u : 0u;
      }
      if (const std::uint64_t n = block.exit_counts[j]; n != 0) {
        block.exit_counts[j] = 0;
        pending_cycles_ += n * cyc;
        pending_hits_ += n * eli;
        for (std::size_t c = 0; c < cls.size(); ++c) {
          pending_class_[c] += n * cls[c];
        }
      }
    }
    block.exec_exits = 0;
  }
  if (block.exec_full != 0) {
    const std::uint64_t n = block.exec_full;
    block.exec_full = 0;
    pending_cycles_ += n * block.static_cycles;
    pending_hits_ += n * block.n_elided;
    for (std::size_t c = 0; c < block.class_counts.size(); ++c) {
      pending_class_[c] += n * block.class_counts[c];
    }
  }
}

std::uint64_t PredecodeTable::block_base_prefix(const Superblock& block,
                                                std::uint32_t n_done) const {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < n_done; ++i) {
    const PredecodedInstr& e = entries_[block.first_word + i];
    total += e.custom != nullptr ? e.custom->latency : 1;
  }
  return total;
}

void PredecodeTable::add_class_prefix(const Superblock& block,
                                      std::uint32_t n_done,
                                      std::uint64_t* counts) const {
  for (std::uint32_t i = 0; i < n_done; ++i) {
    const PredecodedInstr& e = entries_[block.first_word + i];
    counts[static_cast<std::size_t>(e.cls)] += 1;
  }
}

std::uint64_t PredecodeTable::count_elided_prefix(const Superblock& block,
                                                  std::uint32_t n_done) const {
  std::uint64_t elided = 0;
  std::uint32_t i = 0;
  for (std::uint32_t o = 0; o < block.n_ops; ++o) {
    const SuperOp& op = block.ops[o];
    if (i >= n_done || op.kind == kSopBlockEnd) break;
    elided += op.fetch == kFetchElided ? 1u : 0u;
    ++i;
    if (op.kind >= isa::kOpcodeCount) {  // fused pair: a second instruction
      if (i >= n_done) break;
      elided += op.fetch2 == kFetchElided ? 1u : 0u;
      ++i;
    }
  }
  return elided;
}

void PredecodeTable::harvest_block_counts(std::uint64_t* class_counts,
                                          std::uint64_t* cycles,
                                          std::uint64_t* icache_hits) {
  for (Superblock& b : blocks_) flush_exec_counts(b);
  *cycles += pending_cycles_;
  *icache_hits += pending_hits_;
  for (std::size_t c = 0; c < pending_class_.size(); ++c) {
    class_counts[c] += pending_class_[c];
  }
  pending_cycles_ = 0;
  pending_hits_ = 0;
  pending_class_.fill(0);
}

const PredecodedInstr* PredecodeTable::refresh(
    std::uint32_t pc, std::uint32_t word, const tie::TieConfiguration& tie) {
  const std::uint32_t off = pc - base_;
  EXTEN_CHECK(off < limit_ && (off & 3u) == 0,
              "predecode refresh outside window at pc=0x", std::hex, pc);
  PredecodedInstr* entry = &entries_[off >> 2];
  decode_into(entry, word, tie);
  return entry;
}

}  // namespace exten::sim
