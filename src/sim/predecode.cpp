#include "sim/predecode.h"

#include "isa/isa.h"
#include "tie/compiler.h"
#include "util/error.h"

namespace exten::sim {

void PredecodeTable::decode_into(PredecodedInstr* entry, std::uint32_t word,
                                 const tie::TieConfiguration& tie) {
  isa::DecodedInstr d;
  try {
    d = isa::decode(word);
  } catch (const Error&) {
    // Undefined primary opcode: leave the entry illegal so execution of
    // this pc takes the reference path and raises the original fault.
    entry->status = PredecodedInstr::kIllegal;
    entry->custom = nullptr;
    return;
  }

  const isa::OpcodeInfo& info = isa::opcode_info(d.op);
  entry->instr = d;
  entry->cls = info.cls;
  entry->custom = nullptr;
  if (d.op == isa::Opcode::kCustom) {
    if (d.func >= tie.instructions().size()) {
      // Unassigned extension id: the reference path raises the
      // illegal-custom-instruction fault with the exact message.
      entry->status = PredecodedInstr::kIllegal;
      return;
    }
    const tie::CustomInstruction& ci = tie.instruction(d.func);
    entry->custom = &ci;
    entry->reads_rs1 = ci.reads_rs1;
    entry->reads_rs2 = ci.reads_rs2;
  } else {
    entry->reads_rs1 = info.reads_rs1;
    entry->reads_rs2 = info.reads_rs2;
  }
  entry->rs1_src = entry->reads_rs1 ? d.rs1 : 0;
  entry->rs2_src = entry->reads_rs2 ? d.rs2 : 0;
  entry->status = PredecodedInstr::kReady;
}

void PredecodeTable::build(const isa::ProgramImage& image,
                           const tie::TieConfiguration& tie) {
  clear();

  const isa::Segment* text = nullptr;
  for (const isa::Segment& segment : image.segments()) {
    if (image.entry_point() >= segment.base &&
        image.entry_point() < segment.end()) {
      text = &segment;
      break;
    }
  }
  if (text == nullptr || (text->base & 3u) != 0) return;

  const std::size_t words = text->bytes.size() / 4;
  if (words == 0) return;
  base_ = text->base;
  limit_ = static_cast<std::uint32_t>(words * 4);
  entries_.resize(words);
  for (std::size_t i = 0; i < words; ++i) {
    const std::size_t off = i * 4;
    const std::uint32_t word =
        static_cast<std::uint32_t>(text->bytes[off]) |
        (static_cast<std::uint32_t>(text->bytes[off + 1]) << 8) |
        (static_cast<std::uint32_t>(text->bytes[off + 2]) << 16) |
        (static_cast<std::uint32_t>(text->bytes[off + 3]) << 24);
    decode_into(&entries_[i], word, tie);
  }
}

void PredecodeTable::clear() {
  base_ = 0;
  limit_ = 0;
  entries_.clear();
}

const PredecodedInstr* PredecodeTable::refresh(
    std::uint32_t pc, std::uint32_t word, const tie::TieConfiguration& tie) {
  const std::uint32_t off = pc - base_;
  EXTEN_CHECK(off < limit_ && (off & 3u) == 0,
              "predecode refresh outside window at pc=0x", std::hex, pc);
  PredecodedInstr* entry = &entries_[off >> 2];
  decode_into(entry, word, tie);
  return entry;
}

}  // namespace exten::sim
