#include "sim/memory.h"

#include "util/error.h"

namespace exten::sim {

namespace {
void check_aligned(std::uint32_t addr, std::uint32_t size) {
  EXTEN_CHECK((addr & (size - 1)) == 0, "alignment fault: ", size,
              "-byte access at 0x", std::hex, addr);
}
}  // namespace

const Memory::Page* Memory::find_page(std::uint32_t addr) const {
  auto it = pages_.find(addr / kPageBytes);
  return it == pages_.end() ? nullptr : &it->second;
}

Memory::Page& Memory::touch_page(std::uint32_t addr) {
  Page& page = pages_[addr / kPageBytes];
  if (page.empty()) page.resize(kPageBytes, 0);
  return page;
}

std::uint8_t Memory::read8(std::uint32_t addr) const {
  const Page* page = find_page(addr);
  return page ? (*page)[addr % kPageBytes] : 0;
}

std::uint16_t Memory::read16(std::uint32_t addr) const {
  check_aligned(addr, 2);
  return static_cast<std::uint16_t>(read8(addr) |
                                    (static_cast<std::uint16_t>(read8(addr + 1))
                                     << 8));
}

std::uint32_t Memory::read32(std::uint32_t addr) const {
  check_aligned(addr, 4);
  // Fast path: whole word within one resident page.
  const Page* page = find_page(addr);
  if (page != nullptr) {
    const std::size_t off = addr % kPageBytes;
    return static_cast<std::uint32_t>((*page)[off]) |
           (static_cast<std::uint32_t>((*page)[off + 1]) << 8) |
           (static_cast<std::uint32_t>((*page)[off + 2]) << 16) |
           (static_cast<std::uint32_t>((*page)[off + 3]) << 24);
  }
  return 0;
}

void Memory::write8(std::uint32_t addr, std::uint8_t value) {
  touch_page(addr)[addr % kPageBytes] = value;
}

void Memory::write16(std::uint32_t addr, std::uint16_t value) {
  check_aligned(addr, 2);
  Page& page = touch_page(addr);
  const std::size_t off = addr % kPageBytes;
  page[off] = static_cast<std::uint8_t>(value);
  page[off + 1] = static_cast<std::uint8_t>(value >> 8);
}

void Memory::write32(std::uint32_t addr, std::uint32_t value) {
  check_aligned(addr, 4);
  Page& page = touch_page(addr);
  const std::size_t off = addr % kPageBytes;
  page[off] = static_cast<std::uint8_t>(value);
  page[off + 1] = static_cast<std::uint8_t>(value >> 8);
  page[off + 2] = static_cast<std::uint8_t>(value >> 16);
  page[off + 3] = static_cast<std::uint8_t>(value >> 24);
}

void Memory::load(const isa::ProgramImage& image) {
  for (const isa::Segment& segment : image.segments()) {
    for (std::size_t i = 0; i < segment.bytes.size(); ++i) {
      write8(segment.base + static_cast<std::uint32_t>(i), segment.bytes[i]);
    }
  }
}

}  // namespace exten::sim
