#include "sim/memory.h"

#include <algorithm>

namespace exten::sim {

std::uint8_t Memory::read8(std::uint32_t addr) const {
  const Page* page = find_page(addr);
  return page ? (*page)[addr % kPageBytes] : 0;
}

std::uint16_t Memory::read16(std::uint32_t addr) const {
  check_aligned(addr, 2);
  const Page* page = find_page(addr);
  if (page == nullptr) return 0;
  const std::size_t off = addr % kPageBytes;
  return static_cast<std::uint16_t>(
      (*page)[off] | (static_cast<std::uint16_t>((*page)[off + 1]) << 8));
}

std::uint32_t Memory::read32(std::uint32_t addr) const {
  check_aligned(addr, 4);
  const Page* page = find_page(addr);
  if (page == nullptr) return 0;
  const std::size_t off = addr % kPageBytes;
  return static_cast<std::uint32_t>((*page)[off]) |
         (static_cast<std::uint32_t>((*page)[off + 1]) << 8) |
         (static_cast<std::uint32_t>((*page)[off + 2]) << 16) |
         (static_cast<std::uint32_t>((*page)[off + 3]) << 24);
}

void Memory::write8(std::uint32_t addr, std::uint8_t value) {
  touch_page(addr)[addr % kPageBytes] = value;
}

void Memory::write16(std::uint32_t addr, std::uint16_t value) {
  check_aligned(addr, 2);
  Page& page = touch_page(addr);
  const std::size_t off = addr % kPageBytes;
  page[off] = static_cast<std::uint8_t>(value);
  page[off + 1] = static_cast<std::uint8_t>(value >> 8);
}

void Memory::write32(std::uint32_t addr, std::uint32_t value) {
  check_aligned(addr, 4);
  Page& page = touch_page(addr);
  const std::size_t off = addr % kPageBytes;
  page[off] = static_cast<std::uint8_t>(value);
  page[off + 1] = static_cast<std::uint8_t>(value >> 8);
  page[off + 2] = static_cast<std::uint8_t>(value >> 16);
  page[off + 3] = static_cast<std::uint8_t>(value >> 24);
}

void Memory::load(const isa::ProgramImage& image) {
  for (const isa::Segment& segment : image.segments()) {
    // Bulk-copy the span of the segment that falls on each page instead of
    // going byte-by-byte through the write8 page lookup.
    std::size_t i = 0;
    while (i < segment.bytes.size()) {
      const std::uint32_t addr = segment.base + static_cast<std::uint32_t>(i);
      const std::size_t page_off = addr % kPageBytes;
      const std::size_t span =
          std::min<std::size_t>(kPageBytes - page_off, segment.bytes.size() - i);
      Page& page = touch_page(addr);
      std::copy_n(segment.bytes.data() + i, span, page.data() + page_off);
      i += span;
    }
  }
}

std::vector<std::uint32_t> Memory::resident_page_ids() const {
  std::vector<std::uint32_t> ids;
  ids.reserve(pages_.size());
  for (const auto& [id, unused] : pages_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

const std::uint8_t* Memory::page_bytes(std::uint32_t page_id) const {
  auto it = pages_.find(page_id);
  return it == pages_.end() ? nullptr : it->second.data();
}

}  // namespace exten::sim
