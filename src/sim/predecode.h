#pragma once

// Predecoded instruction window for the fast execution engine.
//
// At load_program time the text segment (the segment containing the entry
// point) is decoded ONCE into a dense array of PredecodedInstr records
// indexed by (pc - base) >> 2. The dynamic loop then dispatches on the
// record with no per-step isa::decode, no opcode_info table walk, no
// TieConfiguration::instruction lookup, and no page-map fetch — the
// instruction word and everything derived from it live in one contiguous
// cache-friendly array.
//
// Invalidation rules (see docs/sim.md):
//  - A store executed by the Cpu that lands inside the window marks the
//    containing word kStale; the next fetch of that word re-decodes it from
//    simulator memory (self-modifying code stays correct).
//  - Direct writes through Cpu::memory() bypass the Cpu's store path; call
//    Cpu::invalidate_predecode() afterwards if they may overlap text.
//  - load_program rebuilds the whole table.
//
// PCs outside the window (or misaligned, or words that do not decode to a
// legal instruction) fall back to the reference interpreter path, so
// behaviour — including the exact fault messages — is unchanged.

#include <cstdint>
#include <vector>

#include "isa/encoding.h"
#include "isa/program.h"

namespace exten::tie {
class TieConfiguration;
struct CustomInstruction;
}  // namespace exten::tie

namespace exten::sim {

/// Everything the dynamic loop needs about one static instruction.
struct PredecodedInstr {
  enum Status : std::uint8_t {
    kReady,    ///< decoded; fields below are valid
    kStale,    ///< overwritten by a store; re-decode before use
    kIllegal,  ///< word does not decode (fall back, which faults)
  };

  isa::DecodedInstr instr;
  isa::InstrClass cls = isa::InstrClass::Misc;
  Status status = kIllegal;
  /// Operand-read flags resolved through OpcodeInfo (and through the
  /// custom instruction's declaration for CUSTOM opcodes).
  bool reads_rs1 = false;
  bool reads_rs2 = false;
  /// Interlock sources: the register whose in-flight load this operand
  /// would stall on, or 0 when no interlock is possible (operand not read,
  /// or it is r0 — the Cpu's pending-load register is never 0, so 0 never
  /// matches). Lets the dynamic loop check load-use interlocks with two
  /// byte compares instead of flag + register-field tests.
  std::uint8_t rs1_src = 0;
  std::uint8_t rs2_src = 0;
  /// Resolved extension for CUSTOM opcodes, else null.
  const tie::CustomInstruction* custom = nullptr;
};

/// The predecoded window over a program's text segment.
class PredecodeTable {
 public:
  /// Builds the table from the segment of `image` containing the entry
  /// point. A missing or misaligned segment leaves the table empty (every
  /// fetch then takes the reference path). The TieConfiguration must
  /// outlive the table.
  void build(const isa::ProgramImage& image, const tie::TieConfiguration& tie);

  void clear();
  bool built() const { return !entries_.empty(); }
  std::uint32_t base() const { return base_; }
  std::size_t size() const { return entries_.size(); }

  /// Entry for `pc`, or nullptr when pc is outside the window or not
  /// word-aligned. The returned entry may be kStale/kIllegal.
  const PredecodedInstr* lookup(std::uint32_t pc) const {
    const std::uint32_t off = pc - base_;  // wraps below base -> large
    if (off >= limit_ || (off & 3u) != 0) return nullptr;
    return &entries_[off >> 2];
  }

  /// Re-decodes the entry for `pc` from `word` (after a store invalidated
  /// it). Returns the refreshed entry.
  const PredecodedInstr* refresh(std::uint32_t pc, std::uint32_t word,
                                 const tie::TieConfiguration& tie);

  /// Marks the word containing `addr` stale if it lies in the window.
  void note_write(std::uint32_t addr) {
    const std::uint32_t off = (addr & ~3u) - base_;
    if (off < limit_) entries_[off >> 2].status = PredecodedInstr::kStale;
  }

  /// Marks every word stale (lazy full re-decode from memory).
  void mark_all_stale() {
    for (PredecodedInstr& entry : entries_) {
      entry.status = PredecodedInstr::kStale;
    }
  }

 private:
  static void decode_into(PredecodedInstr* entry, std::uint32_t word,
                          const tie::TieConfiguration& tie);

  std::uint32_t base_ = 0;
  std::uint32_t limit_ = 0;  ///< window length in bytes
  std::vector<PredecodedInstr> entries_;
};

}  // namespace exten::sim
