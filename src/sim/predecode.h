#pragma once

// Predecoded instruction window for the fast execution engine.
//
// At load_program time the text segment (the segment containing the entry
// point) is decoded ONCE into a dense array of PredecodedInstr records
// indexed by (pc - base) >> 2. The dynamic loop then dispatches on the
// record with no per-step isa::decode, no opcode_info table walk, no
// TieConfiguration::instruction lookup, and no page-map fetch — the
// instruction word and everything derived from it live in one contiguous
// cache-friendly array.
//
// Invalidation rules (see docs/sim.md):
//  - A store executed by the Cpu that lands inside the window marks the
//    containing word kStale; the next fetch of that word re-decodes it from
//    simulator memory (self-modifying code stays correct).
//  - Direct writes through Cpu::memory() bypass the Cpu's store path; call
//    Cpu::invalidate_predecode() afterwards if they may overlap text.
//  - load_program rebuilds the whole table.
//
// PCs outside the window (or misaligned, or words that do not decode to a
// legal instruction) fall back to the reference interpreter path, so
// behaviour — including the exact fault messages — is unchanged.
//
// On top of the flat window, the threaded engine (sim/threaded.h) asks for
// superblocks: extended basic blocks of consecutive kReady instructions
// ending at the first unconditional transfer (conditional branches stay
// inside the block and exit it only when taken), with compare+branch /
// load-use / custom-custom pairs fused into single ops and per-instruction
// fetch timing classified at build time. Blocks are built lazily per entry pc and invalidated by the
// same events that mark words stale (stores into the window; a store that
// lands inside a block's range kills that block so the executing run exits
// it after the current instruction).

#include <array>
#include <cstdint>
#include <vector>

#include "isa/encoding.h"
#include "isa/isa.h"
#include "isa/program.h"
#include "sim/config.h"

namespace exten::tie {
class TieConfiguration;
struct CustomInstruction;
}  // namespace exten::tie

namespace exten::sim {

/// Everything the dynamic loop needs about one static instruction.
struct PredecodedInstr {
  enum Status : std::uint8_t {
    kReady,    ///< decoded; fields below are valid
    kStale,    ///< overwritten by a store; re-decode before use
    kIllegal,  ///< word does not decode (fall back, which faults)
  };

  isa::DecodedInstr instr;
  isa::InstrClass cls = isa::InstrClass::Misc;
  Status status = kIllegal;
  /// Operand-read flags resolved through OpcodeInfo (and through the
  /// custom instruction's declaration for CUSTOM opcodes).
  bool reads_rs1 = false;
  bool reads_rs2 = false;
  /// Interlock sources: the register whose in-flight load this operand
  /// would stall on, or 0 when no interlock is possible (operand not read,
  /// or it is r0 — the Cpu's pending-load register is never 0, so 0 never
  /// matches). Lets the dynamic loop check load-use interlocks with two
  /// byte compares instead of flag + register-field tests.
  std::uint8_t rs1_src = 0;
  std::uint8_t rs2_src = 0;
  /// Resolved extension for CUSTOM opcodes, else null.
  const tie::CustomInstruction* custom = nullptr;
};

/// Fetch-timing class of one superblock op, resolved at block-build time.
/// Within a block instructions execute strictly in sequence, so a fetch
/// from the same icache line as its predecessor is a guaranteed hit that
/// cannot change LRU order — the threaded engine skips the cache probe
/// entirely and credits the hits in bulk (Superblock::n_elided hits per
/// full execution via Cache::add_hits; partial executions reconcile
/// through count_elided_prefix).
enum : std::uint8_t {
  kFetchElided = 0,    ///< same line as the previous op: counted hit
  kFetchProbe = 1,     ///< first access to its line: real icache access
  kFetchUncached = 2,  ///< uncached region: fixed penalty, no cache access
};

/// Kind space of superblock ops: values below isa::kOpcodeCount execute a
/// single instruction and equal its opcode's enumerator; fused pairs and
/// the block terminator follow.
enum : std::uint8_t {
  kSopFuseCmpBranch = isa::kOpcodeCount,  ///< slt/sltu/slti/sltiu + beqz/bnez
  kSopFuseLoadUse,                        ///< lw + dependent base-ALU op
  kSopFuseCustomPair,                     ///< two bytecode-backed customs
  // Hot adjacent pairs measured on the application suite; each saves one
  // dispatch (and the repeated-opcode ones an indirect-branch alias slot).
  kSopFuseSlliAdd,                        ///< slli + add (address scaling)
  kSopFuseAddiAddi,                       ///< addi + addi
  kSopFuseAddiSlli,                       ///< addi + slli
  kSopFuseLuiOri,                         ///< lui + ori (constant build)
  kSopFuseLwLw,                           ///< two loads (lw + lw)
  kSopFuseLwBranch,                       ///< lw + any conditional branch
  kSopFuseSubJ,                           ///< sub + j (loop backedge)
  kSopFuseAddiJ,                          ///< addi + j (loop backedge)
  kSopFuseBeqBltu,                        ///< beq + bltu (compare ladder)
  kSopFuseBgeSlli,                        ///< bge + slli (guarded shift)
  kSopFuseBeqzAddi,                       ///< beqz + addi (guarded bump)
  kSopFuseAddLw,                          ///< add + lw (indexed load)
  kSopFuseAddSw,                          ///< add + sw (indexed store)
  kSopFuseSwAddi,                         ///< sw + addi (store, bump index)
  kSopFuseSwSw,                           ///< two stores (sw + sw)
  kSopBlockEnd,                           ///< fall off the end of the block
  kSopKindCount,
};

/// One dispatch unit of a superblock (a single instruction or a fused
/// pair). `idx` is the window word index of the (first) instruction.
struct SuperOp {
  std::uint8_t kind = kSopBlockEnd;
  std::uint8_t fetch = kFetchProbe;   ///< fetch class of the instruction
  std::uint8_t fetch2 = kFetchProbe;  ///< fetch class of a fused second
  std::uint8_t pad = 0;
  std::uint32_t idx = 0;
};

/// A superblock: an extended basic block of consecutive kReady
/// instructions ending at the first *unconditional* transfer (jump, halt)
/// or the length cap. Conditional branches stay inside the block: not
/// taken, execution falls through to the next op; taken, the block exits
/// early at that op. Event totals that are static per block — base-cycle
/// occupancy, per-class retirement counts (the macro-model's N_* inputs),
/// and elided-fetch hits — are attributed per block execution instead of
/// per instruction; the per-instruction retirement records the threaded
/// engine emits reconcile exactly with these sums. Executions are counted,
/// not summed, on the hot path: a full execution bumps `exec_full`, a
/// taken-branch exit bumps that op's `exit_counts` slot, and
/// PredecodeTable::harvest_block_counts expands the counts into the
/// counters at run end (and at invalidation, so recycled slots never leak
/// counts).
struct Superblock {
  static constexpr std::uint32_t kMaxInstrs = 32;

  std::uint32_t first_word = 0;
  std::uint32_t n_instr = 0;        ///< instructions covered (= words)
  std::uint32_t n_elided = 0;       ///< fetches classified kFetchElided
  std::uint32_t n_ops = 0;          ///< ops in use (<= kMaxInstrs + 1)
  std::uint64_t static_cycles = 0;  ///< sum of per-instruction base cycles
  std::uint64_t exec_full = 0;      ///< unharvested full executions
  std::uint64_t exec_exits = 0;     ///< unharvested early exits (total)
  std::array<std::uint32_t, isa::kInstrClassCount> class_counts{};
  bool valid = false;  ///< flipped by stores landing inside the block
  /// Inline op storage (a block has at most kMaxInstrs instructions plus
  /// the kSopBlockEnd terminator): entering a block costs no pointer chase
  /// through a separate heap allocation — the block-transition latency is
  /// the dominant cost of the threaded engine on short blocks.
  std::array<SuperOp, kMaxInstrs + 1> ops;
  /// exit_counts[j]: executions that left the block at op j via a taken
  /// branch, retiring the prefix through op j inclusive. Slots are zeroed
  /// as flush_exec_counts drains them, so the array never needs a bulk
  /// reset on slot recycling.
  std::array<std::uint64_t, kMaxInstrs + 1> exit_counts{};
};

/// The predecoded window over a program's text segment.
class PredecodeTable {
 public:
  /// Builds the table from the segment of `image` containing the entry
  /// point. A missing or misaligned segment leaves the table empty (every
  /// fetch then takes the reference path). The TieConfiguration must
  /// outlive the table.
  void build(const isa::ProgramImage& image, const tie::TieConfiguration& tie);

  void clear();
  bool built() const { return !entries_.empty(); }
  std::uint32_t base() const { return base_; }
  std::size_t size() const { return entries_.size(); }

  /// Entry for `pc`, or nullptr when pc is outside the window or not
  /// word-aligned. The returned entry may be kStale/kIllegal.
  const PredecodedInstr* lookup(std::uint32_t pc) const {
    const std::uint32_t off = pc - base_;  // wraps below base -> large
    if (off >= limit_ || (off & 3u) != 0) return nullptr;
    return &entries_[off >> 2];
  }

  /// Re-decodes the entry for `pc` from `word` (after a store invalidated
  /// it). Returns the refreshed entry.
  const PredecodedInstr* refresh(std::uint32_t pc, std::uint32_t word,
                                 const tie::TieConfiguration& tie);

  /// Marks the word containing `addr` stale if it lies in the window, and
  /// kills every superblock whose range covers that word (the threaded
  /// engine checks the flag after each store and exits the block early).
  void note_write(std::uint32_t addr) {
    const std::uint32_t off = (addr & ~3u) - base_;
    if (off < limit_) [[unlikely]] {
      const std::uint32_t word = off >> 2;
      entries_[word].status = PredecodedInstr::kStale;
      if (!blocks_.empty()) invalidate_blocks_covering(word);
    }
  }

  /// Marks every word stale (lazy full re-decode from memory) and drops
  /// every superblock — a block caches decoded semantics just like an
  /// entry does, so anything that staleness-invalidates the window must
  /// invalidate the blocks too.
  void mark_all_stale() {
    for (PredecodedInstr& entry : entries_) {
      entry.status = PredecodedInstr::kStale;
    }
    drop_all_superblocks();
  }

  /// Superblock starting at `pc`, built on first request. Returns nullptr
  /// when pc is outside the window, misaligned, or its entry is not
  /// kReady. The pointer stays valid until the next superblock() call or
  /// invalidation (the threaded engine holds it only while executing the
  /// block). `config` supplies the icache line size and the uncached
  /// boundary for fetch-timing classification.
  Superblock* superblock(std::uint32_t pc, const ProcessorConfig& config) {
    const std::uint32_t off = pc - base_;
    if (off >= limit_ || (off & 3u) != 0) return nullptr;
    const std::uint32_t word = off >> 2;
    const std::int32_t id = block_at_[word];
    if (id >= 0) [[likely]] return &blocks_[static_cast<std::size_t>(id)];
    return build_superblock(word, config);
  }

  /// Raw window access for the threaded engine's op records (SuperOp::idx
  /// indexes this array).
  const PredecodedInstr* entries_data() const { return entries_.data(); }

  /// Raw table access for the threaded engine's block-transition fast
  /// path, which caches these pointers in registers for a whole run
  /// instead of re-deriving them through the accessors every block.
  /// block_at_data()/entries_data() stay stable for the lifetime of the
  /// program (only their contents change); blocks_data() is invalidated by
  /// every build_superblock call (the vector may grow), i.e. after any
  /// superblock() call that could build.
  std::uint32_t limit_bytes() const { return limit_; }
  const std::int32_t* block_at_data() const { return block_at_.data(); }
  Superblock* blocks_data() { return blocks_.data(); }

  /// Base-cycle sum of the first `n_done` instructions of `block` — the
  /// partial-execution (self-modifying store / fault) counterpart of
  /// Superblock::static_cycles.
  std::uint64_t block_base_prefix(const Superblock& block,
                                  std::uint32_t n_done) const;

  /// Adds the per-class retirement counts of the first `n_done`
  /// instructions of `block` into `counts` (length isa::kInstrClassCount).
  void add_class_prefix(const Superblock& block, std::uint32_t n_done,
                        std::uint64_t* counts) const;

  /// Number of kFetchElided fetches among the first `n_done` instructions
  /// of `block` — the partial-execution counterpart of
  /// Superblock::n_elided.
  std::uint64_t count_elided_prefix(const Superblock& block,
                                    std::uint32_t n_done) const;

  /// Drains every unharvested full-block execution count (and anything
  /// invalidation parked in the pending accumulators) into the caller's
  /// counters: per-execution base cycles into *cycles, elided-fetch hits
  /// into *icache_hits, per-class retirement counts into `class_counts`
  /// (length isa::kInstrClassCount). The threaded engine calls this at
  /// every run exit — normal or faulting — so Cpu-visible totals are
  /// always exact between runs.
  void harvest_block_counts(std::uint64_t* class_counts,
                            std::uint64_t* cycles,
                            std::uint64_t* icache_hits);

 private:
  static void decode_into(PredecodedInstr* entry, std::uint32_t word,
                          const tie::TieConfiguration& tie);

  Superblock* build_superblock(std::uint32_t word,
                               const ProcessorConfig& config);
  void invalidate_blocks_covering(std::uint32_t word);
  void drop_all_superblocks();

  /// Moves a block's unharvested execution counts (full executions and
  /// per-op taken-branch exits) into the pending accumulators. Must run
  /// before the block's slot is recycled or its static sums rewritten —
  /// exit expansion walks the window entries the block's ops still index.
  void flush_exec_counts(Superblock& block);

  std::uint32_t base_ = 0;
  std::uint32_t limit_ = 0;  ///< window length in bytes
  std::vector<PredecodedInstr> entries_;

  // Superblock store: block_at_[word] is the id of the block *starting* at
  // that word (-1 when none; overlapping blocks with different entry
  // points may coexist). Invalidation flips Superblock::valid and recycles
  // the id through free_blocks_ — blocks_ itself only grows at build time,
  // never while a block is executing, so a held Superblock* stays stable.
  std::vector<std::int32_t> block_at_;
  std::vector<Superblock> blocks_;
  std::vector<std::uint32_t> free_blocks_;

  // Execution counts flushed out of invalidated blocks, waiting for the
  // next harvest_block_counts().
  std::uint64_t pending_cycles_ = 0;
  std::uint64_t pending_hits_ = 0;
  std::array<std::uint64_t, isa::kInstrClassCount> pending_class_{};
};

}  // namespace exten::sim
