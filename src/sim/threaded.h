#pragma once

// Tier-3 execution engine: threaded-code dispatch over fused superblocks.
//
// The fast engine (Engine::kFast) already predecodes, but still pays — per
// dynamic instruction — a window lookup + status check, a budget compare, a
// shared dispatch branch, an icache probe, and a cycles_ accumulation. This
// tier removes all of them:
//
//  - Superblocks (sim/predecode.h): extended basic blocks — runs of
//    consecutive ready instructions ending at the first unconditional
//    transfer, with conditional branches falling through in-block and
//    exiting only when taken — are translated once into a dense op list;
//    the dynamic loop looks up pc and checks the budget once per block,
//    not once per instruction.
//  - Threaded dispatch: every handler ends in its own indirect jump through
//    the op-kind table (computed goto), giving the branch predictor one
//    history slot per handler instead of one polymorphic dispatch branch.
//    A portable switch-in-a-loop shares the same handler bodies when the
//    extension is unavailable (or -DEXTEN_THREADED_FORCE_SWITCH=ON).
//  - Superinstruction fusion: compare+branch, load-use, back-to-back
//    bytecode-backed custom pairs, and the hot adjacent pairs measured on
//    the application suite (slli+add, addi+addi, addi+slli, lui+ori,
//    lw+lw, lw+branch, sub/addi+j) execute as single fused handlers
//    (still emitting both per-instruction retirement records).
//  - Block-level event accounting: base-cycle occupancy, per-class N_*
//    retirement counts, and elided-fetch hits are attributed per block
//    from build-time sums (Superblock::static_cycles / class_counts /
//    n_elided); only dynamic penalties are accumulated per instruction, as
//    the `extra` penalty sum. A fully executed block costs one counter
//    bump (Superblock::exec_full) and a taken-branch exit one bump of that
//    op's Superblock::exit_counts slot, both expanded into the totals by
//    PredecodeTable::harvest_block_counts at every run exit; the rare
//    partial executions (self-modifying store, fault) reconcile through a
//    prefix walk. Totals are therefore exactly the per-instruction sums.
//  - Fetch elision: within a block, a fetch from the same icache line as
//    its predecessor is a guaranteed hit that cannot change LRU order
//    (classified at build time), so the probe disappears entirely; the
//    hits are credited in bulk (Cache::add_hits) through the same
//    block-level accounting.
//  - Record elision: a sink that declares
//    `static constexpr bool kDiscardsRecords = true` promises to ignore
//    every RetiredInstruction passed to on_retire. For such sinks the
//    handlers skip building the ~64-byte record altogether — compilers
//    cannot prove those stores dead across the exception edges and the
//    address-taken dispatch labels, so the elision is done explicitly via
//    `if constexpr`. Architectural state, cycles, cache hit/miss counters,
//    fault behavior, and block-level counts are bit-exact either way
//    (tests/test_engine_diff.cpp pins a discarding run against a
//    publishing one).
//
// Correctness contract: bit-exact with Engine::kFast and kReference — the
// same RetiredInstruction stream (every field), the same cycles, the same
// faults with pc_ parked on the faulting instruction, and the same
// self-modifying-code semantics (a store landing inside the running block
// invalidates it; the block exits after the current instruction completes).
// tests/test_engine_diff.cpp and the fuzz engine_diff oracle enforce this.
//
// This header is included at the bottom of sim/cpu.h (it defines the
// Cpu::run_threaded member template) — do not include it directly.

#include <cstdint>

#include "util/error.h"

// Computed goto is a GNU extension; MSVC (or an explicit
// -DEXTEN_THREADED_FORCE_SWITCH=ON) gets the portable switch fallback.
#if !defined(EXTEN_THREADED_FORCE_SWITCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define EXTEN_THREADED_COMPUTED_GOTO 1
#else
#define EXTEN_THREADED_COMPUTED_GOTO 0
#endif

namespace exten::sim {

namespace threaded_detail {

// Every opcode, in enumerator order — SuperOp kinds below isa::kOpcodeCount
// are the opcode value itself, so the dispatch table is generated from this
// list and the static_asserts below pin the order against the enum.
#define EXTEN_SOP_OPCODES(X)                                                  \
  X(kAdd) X(kSub) X(kAnd) X(kOr) X(kXor) X(kNor) X(kAndn) X(kSll) X(kSrl)    \
  X(kSra) X(kSlt) X(kSltu) X(kMul) X(kMulh) X(kMin) X(kMax) X(kMinu)         \
  X(kMaxu) X(kAddi) X(kAndi) X(kOri) X(kXori) X(kSlli) X(kSrli) X(kSrai)     \
  X(kSlti) X(kSltiu) X(kLui) X(kLw) X(kLh) X(kLhu) X(kLb) X(kLbu) X(kSw)     \
  X(kSh) X(kSb) X(kJ) X(kJal) X(kJr) X(kJalr) X(kBeq) X(kBne) X(kBlt)        \
  X(kBge) X(kBltu) X(kBgeu) X(kBeqz) X(kBnez) X(kNop) X(kHalt) X(kCustom)

inline constexpr isa::Opcode kOpcodeOrder[] = {
#define EXTEN_SOP_ORDER(name) isa::Opcode::name,
    EXTEN_SOP_OPCODES(EXTEN_SOP_ORDER)
#undef EXTEN_SOP_ORDER
};

constexpr bool opcode_order_consecutive() {
  for (std::size_t i = 0; i < std::size(kOpcodeOrder); ++i) {
    if (static_cast<std::size_t>(kOpcodeOrder[i]) != i) return false;
  }
  return true;
}

static_assert(std::size(kOpcodeOrder) == isa::kOpcodeCount,
              "threaded dispatch list must name every opcode");
static_assert(opcode_order_consecutive(),
              "threaded dispatch list must match the Opcode enum order");

// Numeric kind constants for the switch fallback's case labels (shared
// tags with the computed-goto labels).
#define EXTEN_SOP_KIND(name)                  \
  inline constexpr std::uint8_t kKind_##name = \
      static_cast<std::uint8_t>(isa::Opcode::name);
EXTEN_SOP_OPCODES(EXTEN_SOP_KIND)
#undef EXTEN_SOP_KIND
inline constexpr std::uint8_t kKind_FuseCmpBranch = kSopFuseCmpBranch;
inline constexpr std::uint8_t kKind_FuseLoadUse = kSopFuseLoadUse;
inline constexpr std::uint8_t kKind_FuseCustomPair = kSopFuseCustomPair;
inline constexpr std::uint8_t kKind_FuseSlliAdd = kSopFuseSlliAdd;
inline constexpr std::uint8_t kKind_FuseAddiAddi = kSopFuseAddiAddi;
inline constexpr std::uint8_t kKind_FuseAddiSlli = kSopFuseAddiSlli;
inline constexpr std::uint8_t kKind_FuseLuiOri = kSopFuseLuiOri;
inline constexpr std::uint8_t kKind_FuseLwLw = kSopFuseLwLw;
inline constexpr std::uint8_t kKind_FuseLwBranch = kSopFuseLwBranch;
inline constexpr std::uint8_t kKind_FuseSubJ = kSopFuseSubJ;
inline constexpr std::uint8_t kKind_FuseAddiJ = kSopFuseAddiJ;
inline constexpr std::uint8_t kKind_FuseBeqBltu = kSopFuseBeqBltu;
inline constexpr std::uint8_t kKind_FuseBgeSlli = kSopFuseBgeSlli;
inline constexpr std::uint8_t kKind_FuseBeqzAddi = kSopFuseBeqzAddi;
inline constexpr std::uint8_t kKind_FuseAddLw = kSopFuseAddLw;
inline constexpr std::uint8_t kKind_FuseAddSw = kSopFuseAddSw;
inline constexpr std::uint8_t kKind_FuseSwAddi = kSopFuseSwAddi;
inline constexpr std::uint8_t kKind_FuseSwSw = kSopFuseSwSw;
inline constexpr std::uint8_t kKind_BlockEnd = kSopBlockEnd;

/// True when `Sink` declared kDiscardsRecords = true: retirement records
/// are never read, so the handlers need not build them.
template <typename Sink>
constexpr bool sink_discards_records() {
  if constexpr (requires { Sink::kDiscardsRecords; }) {
    return Sink::kDiscardsRecords;
  } else {
    return false;
  }
}

/// Stack space for one retirement record — or nothing, for sinks that
/// discard records. ptr() keeps the handler bodies uniform; every
/// dereference sits behind `if constexpr (kPub)`.
template <bool kPublish>
struct RecordStorage {
  RetiredInstruction rec;
  RetiredInstruction* ptr() { return &rec; }
};
template <>
struct RecordStorage<false> {
  RetiredInstruction* ptr() { return nullptr; }
};

}  // namespace threaded_detail

// Handler scaffolding. EXTEN_OP opens a handler for one SuperOp kind;
// EXTEN_NEXT advances to the following op of the block and re-dispatches;
// EXTEN_RETIRE folds an instruction's dynamic penalty cycles into the
// block's `extra` accumulator and publishes the record (when the sink
// consumes records, the penalties are read back off the record so the two
// accountings can never diverge). Handlers that end the block jump to
// block_done instead of EXTEN_NEXT.
#if EXTEN_THREADED_COMPUTED_GOTO
#define EXTEN_OP(tag) H_##tag:
#define EXTEN_NEXT()             \
  do {                           \
    ++op;                        \
    goto* kDispatch[op->kind];   \
  } while (0)
#else
#define EXTEN_OP(tag) case threaded_detail::kKind_##tag:
#define EXTEN_NEXT()     \
  do {                   \
    ++op;                \
    goto dispatch_next;  \
  } while (0)
#endif

#define EXTEN_RETIRE(rp, pen)                          \
  do {                                                 \
    if constexpr (kPub) {                              \
      extra += (rp)->total_cycles - (rp)->base_cycles; \
      sink.on_retire(*(rp));                           \
    } else {                                           \
      extra += (pen);                                  \
    }                                                  \
    ++done;                                            \
  } while (0)

// ALU with a register rs2 (the expression reads `b`).
#define EXTEN_ALU(name, expr)                                    \
  EXTEN_OP(name) {                                               \
    const PredecodedInstr& e = win[op->idx];                     \
    const std::uint32_t a = regs_[e.instr.rs1];                  \
    const std::uint32_t b = regs_[e.instr.rs2];                  \
    threaded_detail::RecordStorage<kPub> rs;                     \
    RetiredInstruction* const r = rs.ptr();                      \
    const std::uint32_t pen = begin_instr(e, op->fetch, a, b, r); \
    const std::uint32_t v = (expr);                              \
    if (e.instr.rd != isa::kZeroRegister) regs_[e.instr.rd] = v; \
    if constexpr (kPub) r->result = v;                           \
    vpc += 4;                                                    \
    EXTEN_RETIRE(r, pen);                                        \
    EXTEN_NEXT();                                                \
  }

// ALU with an immediate: rs2 is read only to fill the record's rs2_value.
#define EXTEN_ALU_IMM(name, expr)                                \
  EXTEN_OP(name) {                                               \
    const PredecodedInstr& e = win[op->idx];                     \
    const std::uint32_t a = regs_[e.instr.rs1];                  \
    const std::uint32_t b = kPub ? regs_[e.instr.rs2] : 0u;      \
    threaded_detail::RecordStorage<kPub> rs;                     \
    RetiredInstruction* const r = rs.ptr();                      \
    const std::uint32_t pen = begin_instr(e, op->fetch, a, b, r); \
    const std::uint32_t v = (expr);                              \
    if (e.instr.rd != isa::kZeroRegister) regs_[e.instr.rd] = v; \
    if constexpr (kPub) r->result = v;                           \
    vpc += 4;                                                    \
    EXTEN_RETIRE(r, pen);                                        \
    EXTEN_NEXT();                                                \
  }

#define EXTEN_LOAD(name, bytes, sign)                       \
  EXTEN_OP(name) {                                          \
    const PredecodedInstr& e = win[op->idx];                \
    const std::uint32_t a = regs_[e.instr.rs1];             \
    const std::uint32_t b = kPub ? regs_[e.instr.rs2] : 0u; \
    threaded_detail::RecordStorage<kPub> rs;                \
    RetiredInstruction* const r = rs.ptr();                 \
    std::uint32_t pen = begin_instr(e, op->fetch, a, b, r); \
    pen += do_load(e, a, bytes, sign, r);                   \
    vpc += 4;                                               \
    EXTEN_RETIRE(r, pen);                                   \
    EXTEN_NEXT();                                           \
  }

#define EXTEN_STORE(name, bytes)                            \
  EXTEN_OP(name) {                                          \
    const PredecodedInstr& e = win[op->idx];                \
    const std::uint32_t a = regs_[e.instr.rs1];             \
    const std::uint32_t b = regs_[e.instr.rs2];             \
    threaded_detail::RecordStorage<kPub> rs;                \
    RetiredInstruction* const r = rs.ptr();                 \
    std::uint32_t pen = begin_instr(e, op->fetch, a, b, r); \
    pen += do_store(e, a, b, bytes, r);                     \
    vpc += 4;                                               \
    EXTEN_RETIRE(r, pen);                                   \
    if (sb->valid) [[likely]] EXTEN_NEXT();                 \
    /* the store landed inside this block */                \
    goto block_done;                                        \
  }

// Branch on a two-register condition. Not taken falls through to the next
// op of the same (extended basic) block; taken exits the block — the
// epilogue defers the prefix attribution via this op's exit-count slot.
#define EXTEN_BRANCH(name, cond)                            \
  EXTEN_OP(name) {                                          \
    const PredecodedInstr& e = win[op->idx];                \
    const std::uint32_t a = regs_[e.instr.rs1];             \
    const std::uint32_t b = regs_[e.instr.rs2];             \
    threaded_detail::RecordStorage<kPub> rs;                \
    RetiredInstruction* const r = rs.ptr();                 \
    std::uint32_t pen = begin_instr(e, op->fetch, a, b, r); \
    const bool taken = (cond);                              \
    pen += do_branch(e, taken, r);                          \
    EXTEN_RETIRE(r, pen);                                   \
    if (!taken) EXTEN_NEXT();                               \
    goto block_done;                                        \
  }

// Branch against zero: rs2 is record-only.
#define EXTEN_BRANCH_Z(name, cond)                          \
  EXTEN_OP(name) {                                          \
    const PredecodedInstr& e = win[op->idx];                \
    const std::uint32_t a = regs_[e.instr.rs1];             \
    const std::uint32_t b = kPub ? regs_[e.instr.rs2] : 0u; \
    threaded_detail::RecordStorage<kPub> rs;                \
    RetiredInstruction* const r = rs.ptr();                 \
    std::uint32_t pen = begin_instr(e, op->fetch, a, b, r); \
    const bool taken = (cond);                              \
    pen += do_branch(e, taken, r);                          \
    EXTEN_RETIRE(r, pen);                                   \
    if (!taken) EXTEN_NEXT();                               \
    goto block_done;                                        \
  }

// One ALU half of a fused pair: `expr` reads a/b/e like EXTEN_ALU; `breal`
// says whether rs2 is architecturally read (reg-reg form) or record-only
// (immediate form). The second half needs no special interlock handling —
// begin_instr's `pending` check covers any dependence on a load retired by
// the first half.
#define EXTEN_FUSE_ALU_HALF(eN, fetchN, breal, expr)              \
  {                                                               \
    const PredecodedInstr& e = (eN);                              \
    const std::uint32_t a = regs_[e.instr.rs1];                   \
    const std::uint32_t b = (breal) || kPub ? regs_[e.instr.rs2] : 0u; \
    threaded_detail::RecordStorage<kPub> rs;                      \
    RetiredInstruction* const r = rs.ptr();                       \
    const std::uint32_t pen = begin_instr(e, (fetchN), a, b, r);  \
    const std::uint32_t v = (expr);                               \
    if (e.instr.rd != isa::kZeroRegister) regs_[e.instr.rd] = v;  \
    if constexpr (kPub) r->result = v;                            \
    vpc += 4;                                                     \
    EXTEN_RETIRE(r, pen);                                         \
  }

// Fused conditional-branch + ALU pair. Not taken falls through into the
// ALU half; taken exits the block after only the branch half retired —
// a *mid-op* exit of a live block, which cannot use the deferred
// exit-count slot (that encodes whole-op prefixes), so it leaves through
// block_done_partial, which attributes the odd prefix eagerly.
#define EXTEN_FUSE_BRANCH_ALU(name, breal, cond, b2, expr2)              \
  EXTEN_OP(name) {                                                       \
    const PredecodedInstr& e1 = win[op->idx];                            \
    const PredecodedInstr& e2 = win[op->idx + 1];                        \
    {                                                                    \
      const PredecodedInstr& e = e1;                                     \
      const std::uint32_t a = regs_[e.instr.rs1];                        \
      const std::uint32_t b = (breal) || kPub ? regs_[e.instr.rs2] : 0u; \
      threaded_detail::RecordStorage<kPub> rs;                           \
      RetiredInstruction* const r = rs.ptr();                            \
      std::uint32_t pen = begin_instr(e, op->fetch, a, b, r);            \
      const bool taken = (cond);                                         \
      pen += do_branch(e, taken, r);                                     \
      EXTEN_RETIRE(r, pen);                                              \
      if (taken) [[unlikely]] goto block_done_partial;                   \
    }                                                                    \
    EXTEN_FUSE_ALU_HALF(e2, op->fetch2, b2, expr2)                       \
    ++fused_acc;                                                         \
    EXTEN_NEXT();                                                        \
  }

// One sw half of a fused pair. A store may land inside the current block
// and invalidate it — including overwriting the *other* half's word — so
// every handler using this macro must test sb->valid immediately after the
// store half and exit via block_done when it fails; the mid-op prefix
// (odd retirement count) is attributed by the store-kill partial path.
#define EXTEN_FUSE_STORE_HALF(eN, fetchN)                  \
  {                                                        \
    const PredecodedInstr& e = (eN);                       \
    const std::uint32_t a = regs_[e.instr.rs1];            \
    const std::uint32_t b = regs_[e.instr.rs2];            \
    threaded_detail::RecordStorage<kPub> rs;               \
    RetiredInstruction* const r = rs.ptr();                \
    std::uint32_t pen = begin_instr(e, (fetchN), a, b, r); \
    pen += do_store(e, a, b, 4, r);                        \
    vpc += 4;                                              \
    EXTEN_RETIRE(r, pen);                                  \
  }

// Fused ALU+ALU pair: both halves retire, one dispatch.
#define EXTEN_FUSE_ALU_ALU(name, b1, expr1, b2, expr2) \
  EXTEN_OP(name) {                                     \
    const PredecodedInstr& e1 = win[op->idx];          \
    const PredecodedInstr& e2 = win[op->idx + 1];      \
    EXTEN_FUSE_ALU_HALF(e1, op->fetch, b1, expr1)      \
    EXTEN_FUSE_ALU_HALF(e2, op->fetch2, b2, expr2)     \
    ++fused_acc;                                       \
    EXTEN_NEXT();                                      \
  }

// Fused ALU+j loop backedge: the jump always ends the block, so the pair
// is always the block's last op and exits through block_done.
#define EXTEN_FUSE_ALU_J(name, b1, expr1)                          \
  EXTEN_OP(name) {                                                 \
    const PredecodedInstr& e1 = win[op->idx];                      \
    const PredecodedInstr& e2 = win[op->idx + 1];                  \
    EXTEN_FUSE_ALU_HALF(e1, op->fetch, b1, expr1)                  \
    {                                                              \
      const PredecodedInstr& e = e2;                               \
      const std::uint32_t a = kPub ? regs_[e.instr.rs1] : 0u;      \
      const std::uint32_t b = kPub ? regs_[e.instr.rs2] : 0u;      \
      threaded_detail::RecordStorage<kPub> rs;                     \
      RetiredInstruction* const r = rs.ptr();                      \
      std::uint32_t pen = begin_instr(e, op->fetch2, a, b, r);     \
      vpc += 4 + static_cast<std::uint32_t>(e.instr.imm) * 4;      \
      pen += config_.jump_penalty;                                 \
      if constexpr (kPub) {                                        \
        r->total_cycles += config_.jump_penalty;                   \
        r->redirect_cycles += config_.jump_penalty;                \
      }                                                            \
      EXTEN_RETIRE(r, pen);                                        \
    }                                                              \
    ++fused_acc;                                                   \
    goto block_done;                                               \
  }

template <typename Sink>
RunResult Cpu::run_threaded(Sink& sink, std::uint64_t max_instructions) {
  using internal::as_signed;
  // Publish per-instruction records to the sink? Sinks that declare
  // kDiscardsRecords opt out; everything architectural stays identical.
  constexpr bool kPub = !threaded_detail::sink_discards_records<Sink>();
  sink.on_run_begin();
  RunResult result;
  obs::ScopedSpan run_span(obs::Category::kEngine, "run_threaded");
  const std::uint64_t run_start_ns =
      run_span.armed() ? obs::Tracer::now_ns() : 0;
  const std::uint64_t tie_ns_before = tie_exec_ns_;
  const std::uint64_t tie_count_before = tie_exec_count_;

  // Run-local accumulators: totals the old loop read-modify-wrote on
  // members per instruction or per block stay in registers for the whole
  // run and are flushed once at every exit. The scope guard keeps the flush
  // on the fault path too (a fault anywhere — hot block, cold step — must
  // leave the Cpu's observable totals exact); flushing is idempotent, so
  // the explicit call on the normal path plus the guard's is safe.
  std::uint64_t executed = 0;    // becomes result.instructions
  std::uint64_t hot_instrs = 0;  // instructions retired inside superblocks
  std::uint64_t hot_blocks = 0;  // superblocks entered
  std::uint64_t fused_acc = 0;   // fused pairs executed
  std::uint64_t extra_acc = 0;   // dynamic penalty cycles beyond base
  const auto flush_run_totals = [&] {
    threaded_counters_.instructions += hot_instrs;
    threaded_counters_.superblocks += hot_blocks;
    threaded_counters_.fused += fused_acc;
    cycles_ += extra_acc;
    hot_instrs = hot_blocks = fused_acc = extra_acc = 0;
    std::uint64_t harvested_cycles = 0;
    std::uint64_t harvested_hits = 0;
    predecode_.harvest_block_counts(threaded_counters_.class_instrs.data(),
                                    &harvested_cycles, &harvested_hits);
    cycles_ += harvested_cycles;
    icache_.add_hits(harvested_hits);
  };
  struct FlushOnExit {
    const decltype(flush_run_totals)& flush;
    ~FlushOnExit() { flush(); }
  } flush_on_exit{flush_run_totals};

  // Block-transition fast path. The window geometry and the entry /
  // block-id table bases are invariant for the lifetime of the loaded
  // program (only their contents change — see block_at_data()), and pc
  // lives in a register for the whole run; the member pc_ is synced
  // wherever other code can observe it (cold steps, FuseLoadUse's
  // execute(), faults, run exit). blocks_data() is re-fetched after any
  // build, which is the only thing that can move it.
  const PredecodedInstr* const win = predecode_.entries_data();
  const std::int32_t* const block_at = predecode_.block_at_data();
  Superblock* blocks = predecode_.blocks_data();
  const std::uint32_t window_base = predecode_.base();
  const std::uint32_t window_limit = predecode_.limit_bytes();
  std::uint32_t pc = pc_;
  // Interlock source (destination register of an immediately preceding
  // load): run-local like pc, synced with the member around cold steps and
  // at every run exit.
  unsigned pending = pending_load_rd_;

  while (executed < max_instructions) {
    Superblock* sb = nullptr;
    const std::uint32_t woff = pc - window_base;  // wraps below base -> large
    if (woff < window_limit && (woff & 3u) == 0) [[likely]] {
      const std::int32_t id = block_at[woff >> 2];
      if (id >= 0) [[likely]] {
        // block_at_ only ever maps to valid blocks (invalidation resets
        // the slot to -1 as it flips Superblock::valid), so neither the
        // entry status nor block validity needs re-checking here.
        sb = blocks + id;
      } else if (win[woff >> 2].status == PredecodedInstr::kReady) {
        sb = predecode_.superblock(pc, config_);
        blocks = predecode_.blocks_data();  // the build may have grown it
      }
    }
    if (sb == nullptr ||
        sb->n_instr > max_instructions - executed) [[unlikely]] {
      // Cold path: out-of-window pc, stale/illegal entry, or fewer budget
      // instructions left than the block would retire. One step, exactly
      // like the fast engine's loop (which is what keeps budget-truncated
      // runs bit-exact), attributed as a single-instruction "block".
      pc_ = pc;
      pending_load_rd_ = pending;
      const PredecodedInstr* p = predecode_.lookup(pc);
      RetiredInstruction retired;
      const bool keep_going = p == nullptr ? step_reference(&retired)
                              : p->status == PredecodedInstr::kReady
                                  ? dispatch_predecoded(p, &retired)
                                  : step_fast_cold(p, &retired);
      pc = pc_;
      pending = pending_load_rd_;
      ++executed;
      cycles_ += retired.total_cycles;
      threaded_counters_.instructions += 1;
      threaded_counters_.singles += 1;
      threaded_counters_.class_instrs[static_cast<std::size_t>(retired.cls)] +=
          1;
      sink.on_retire(retired);
      if (!keep_going) {
        result.halted = true;
        break;
      }
      continue;
    }

    const SuperOp* op = sb->ops.data();
    std::uint32_t bpc = pc;     // block entry pc (self-loop detection)
    std::uint32_t vpc = pc;     // block-local pc; written back at every exit
    std::uint32_t done = 0;     // instructions retired in this block
    std::uint64_t extra = 0;    // dynamic penalty cycles beyond base
    bool halted = false;

    try {
      // Per-instruction prologue shared by every handler: fetch timing
      // (probe / counted hit / uncached penalty) and the load-use
      // interlock check, plus — for record-consuming sinks — the identity
      // and operand fields. Returns the penalty cycles it charged; a
      // field-for-field mirror of dispatch_predecoded.
      auto begin_instr = [&](const PredecodedInstr& e, std::uint8_t fetch,
                             std::uint32_t a, std::uint32_t b,
                             RetiredInstruction* r) EXTEN_LAMBDA_INLINE
          -> std::uint32_t {
        if constexpr (kPub) {
          r->pc = vpc;
          r->instr = e.instr;
          r->cls = e.cls;
          r->rs1_value = a;
          r->rs2_value = b;
        }
        std::uint32_t pen = 0;
        // kFetchElided needs no action here: elided hits are credited in
        // bulk from Superblock::n_elided by the block-level accounting.
        if (fetch == kFetchProbe) {
          if (icache_.access(vpc) == CacheOutcome::kMiss) [[unlikely]] {
            pen += config_.icache_miss_penalty;
            if constexpr (kPub) {
              r->icache_miss = true;
              r->total_cycles += config_.icache_miss_penalty;
              r->memory_stall_cycles += config_.icache_miss_penalty;
            }
          }
        } else if (fetch == kFetchUncached) {
          pen += config_.uncached_fetch_penalty;
          if constexpr (kPub) {
            r->uncached_fetch = true;
            r->total_cycles += config_.uncached_fetch_penalty;
            r->memory_stall_cycles += config_.uncached_fetch_penalty;
          }
        }
        if (pending == e.rs1_src || pending == e.rs2_src) [[unlikely]] {
          pen += config_.load_use_interlock;
          if constexpr (kPub) {
            r->interlock_cycles = config_.load_use_interlock;
            r->total_cycles += config_.load_use_interlock;
          }
        }
        pending = isa::kNumRegisters;
        return pen;
      };
      auto do_load = [&](const PredecodedInstr& e, std::uint32_t a,
                         unsigned bytes, bool sign,
                         RetiredInstruction* r) EXTEN_LAMBDA_INLINE
          -> std::uint32_t {
        const std::uint32_t addr = a + static_cast<std::uint32_t>(e.instr.imm);
        std::uint32_t pen = 0;
        if (config_.is_uncached(addr)) {
          pen += config_.uncached_data_penalty;
          if constexpr (kPub) {
            r->uncached_data = true;
            r->total_cycles += config_.uncached_data_penalty;
            r->memory_stall_cycles += config_.uncached_data_penalty;
          }
        } else if (dcache_.access(addr) == CacheOutcome::kMiss) {
          pen += config_.dcache_miss_penalty;
          if constexpr (kPub) {
            r->dcache_miss = true;
            r->total_cycles += config_.dcache_miss_penalty;
            r->memory_stall_cycles += config_.dcache_miss_penalty;
          }
        }
        std::uint32_t value = 0;
        switch (bytes) {
          case 1:
            value = memory_.read8_via(load_page_, addr);
            if (sign) {
              value = static_cast<std::uint32_t>(
                  static_cast<std::int32_t>(static_cast<std::int8_t>(value)));
            }
            break;
          case 2:
            value = memory_.read16_via(load_page_, addr);
            if (sign) {
              value = static_cast<std::uint32_t>(
                  static_cast<std::int32_t>(static_cast<std::int16_t>(value)));
            }
            break;
          default:
            value = memory_.read32_via(load_page_, addr);
            break;
        }
        if (e.instr.rd != isa::kZeroRegister) regs_[e.instr.rd] = value;
        if constexpr (kPub) {
          r->mem_addr = addr;
          r->is_mem = true;
          r->result = value;
        }
        pending =
            e.instr.rd != isa::kZeroRegister ? e.instr.rd : isa::kNumRegisters;
        return pen;
      };
      auto do_store = [&](const PredecodedInstr& e, std::uint32_t a,
                          std::uint32_t b, unsigned bytes,
                          RetiredInstruction* r) EXTEN_LAMBDA_INLINE
          -> std::uint32_t {
        const std::uint32_t addr = a + static_cast<std::uint32_t>(e.instr.imm);
        std::uint32_t pen = 0;
        if constexpr (kPub) {
          r->mem_addr = addr;
          r->is_mem = true;
          r->result = b;
        }
        if (!config_.is_uncached(addr)) {
          dcache_.probe(addr);
        } else {
          pen += config_.uncached_data_penalty;
          if constexpr (kPub) {
            r->uncached_data = true;
            r->total_cycles += config_.uncached_data_penalty;
            r->memory_stall_cycles += config_.uncached_data_penalty;
          }
        }
        switch (bytes) {
          case 1:
            memory_.write8_via(store_page_, addr,
                               static_cast<std::uint8_t>(b));
            break;
          case 2:
            memory_.write16_via(store_page_, addr,
                                static_cast<std::uint16_t>(b));
            break;
          default:
            memory_.write32_via(store_page_, addr, b);
            break;
        }
        // May invalidate superblocks — including the one being executed;
        // the store handlers check sb->valid and exit the block early.
        predecode_.note_write(addr);
        return pen;
      };
      auto do_branch = [&](const PredecodedInstr& e, bool taken,
                           RetiredInstruction* r) EXTEN_LAMBDA_INLINE
          -> std::uint32_t {
        if constexpr (kPub) r->branch_taken = taken;
        if (taken) {
          vpc += 4 + static_cast<std::uint32_t>(e.instr.imm) * 4;
          if constexpr (kPub) {
            r->total_cycles += config_.taken_branch_penalty;
            r->redirect_cycles += config_.taken_branch_penalty;
          }
          return config_.taken_branch_penalty;
        }
        vpc += 4;
        return 0;
      };
      auto do_custom = [&](const PredecodedInstr& e, std::uint32_t a,
                           std::uint32_t b, bool bytecode_known,
                           RetiredInstruction* r) EXTEN_LAMBDA_INLINE {
        const tie::CustomInstruction& ci = *e.custom;
        if constexpr (kPub) {
          r->custom = &ci;
          r->base_cycles = ci.latency;
          r->total_cycles += ci.latency - 1;
        }
        std::uint32_t rd_value;
        if (obs::Tracer::enabled()) [[unlikely]] {
          const auto tie_start = std::chrono::steady_clock::now();
          rd_value = bytecode_known
                         ? tie_.execute_bytecode(ci, a, b, &tie_state_)
                         : tie_.execute(ci, a, b, &tie_state_);
          tie_exec_ns_ += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - tie_start)
                  .count());
          ++tie_exec_count_;
        } else {
          rd_value = bytecode_known
                         ? tie_.execute_bytecode(ci, a, b, &tie_state_)
                         : tie_.execute(ci, a, b, &tie_state_);
        }
        if (ci.writes_rd) {
          if (e.instr.rd != isa::kZeroRegister) regs_[e.instr.rd] = rd_value;
          if constexpr (kPub) r->result = rd_value;
        }
      };

#if EXTEN_THREADED_COMPUTED_GOTO
      static const void* const kDispatch[] = {
#define EXTEN_SOP_LABEL(name) &&H_##name,
          EXTEN_SOP_OPCODES(EXTEN_SOP_LABEL)
#undef EXTEN_SOP_LABEL
          &&H_FuseCmpBranch,
          &&H_FuseLoadUse,
          &&H_FuseCustomPair,
          &&H_FuseSlliAdd,
          &&H_FuseAddiAddi,
          &&H_FuseAddiSlli,
          &&H_FuseLuiOri,
          &&H_FuseLwLw,
          &&H_FuseLwBranch,
          &&H_FuseSubJ,
          &&H_FuseAddiJ,
          &&H_FuseBeqBltu,
          &&H_FuseBgeSlli,
          &&H_FuseBeqzAddi,
          &&H_FuseAddLw,
          &&H_FuseAddSw,
          &&H_FuseSwAddi,
          &&H_FuseSwSw,
          &&H_BlockEnd,
      };
      static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) == kSopKindCount,
                    "dispatch table must cover every SuperOp kind");
      goto* kDispatch[op->kind];
#else
    dispatch_next:
      switch (op->kind) {
#endif

      EXTEN_ALU(kAdd, a + b)
      EXTEN_ALU(kSub, a - b)
      EXTEN_ALU(kAnd, a & b)
      EXTEN_ALU(kOr, a | b)
      EXTEN_ALU(kXor, a ^ b)
      EXTEN_ALU(kNor, ~(a | b))
      EXTEN_ALU(kAndn, a & ~b)
      EXTEN_ALU(kSll, a << (b & 31))
      EXTEN_ALU(kSrl, a >> (b & 31))
      EXTEN_ALU(kSra, static_cast<std::uint32_t>(as_signed(a) >> (b & 31)))
      EXTEN_ALU(kSlt, as_signed(a) < as_signed(b) ? 1u : 0u)
      EXTEN_ALU(kSltu, a < b ? 1u : 0u)
      EXTEN_ALU(kMul, a * b)
      EXTEN_ALU(kMulh,
                static_cast<std::uint32_t>(
                    (static_cast<std::int64_t>(as_signed(a)) *
                     static_cast<std::int64_t>(as_signed(b))) >>
                    32))
      EXTEN_ALU(kMin, as_signed(a) < as_signed(b) ? a : b)
      EXTEN_ALU(kMax, as_signed(a) > as_signed(b) ? a : b)
      EXTEN_ALU(kMinu, a < b ? a : b)
      EXTEN_ALU(kMaxu, a > b ? a : b)
      EXTEN_ALU_IMM(kAddi, a + static_cast<std::uint32_t>(e.instr.imm))
      EXTEN_ALU_IMM(kAndi, a & static_cast<std::uint32_t>(e.instr.imm))
      EXTEN_ALU_IMM(kOri, a | static_cast<std::uint32_t>(e.instr.imm))
      EXTEN_ALU_IMM(kXori, a ^ static_cast<std::uint32_t>(e.instr.imm))
      EXTEN_ALU_IMM(kSlli, a << (e.instr.imm & 31))
      EXTEN_ALU_IMM(kSrli, a >> (e.instr.imm & 31))
      EXTEN_ALU_IMM(kSrai,
                    static_cast<std::uint32_t>(as_signed(a) >>
                                               (e.instr.imm & 31)))
      EXTEN_ALU_IMM(kSlti, as_signed(a) < e.instr.imm ? 1u : 0u)
      EXTEN_ALU_IMM(kSltiu,
                    a < static_cast<std::uint32_t>(e.instr.imm) ? 1u : 0u)
      EXTEN_ALU_IMM(kLui, static_cast<std::uint32_t>(e.instr.imm))

      EXTEN_LOAD(kLw, 4, false)
      EXTEN_LOAD(kLh, 2, true)
      EXTEN_LOAD(kLhu, 2, false)
      EXTEN_LOAD(kLb, 1, true)
      EXTEN_LOAD(kLbu, 1, false)

      EXTEN_STORE(kSw, 4)
      EXTEN_STORE(kSh, 2)
      EXTEN_STORE(kSb, 1)

      EXTEN_OP(kJ) {
        const PredecodedInstr& e = win[op->idx];
        const std::uint32_t a = kPub ? regs_[e.instr.rs1] : 0u;
        const std::uint32_t b = kPub ? regs_[e.instr.rs2] : 0u;
        threaded_detail::RecordStorage<kPub> rs;
        RetiredInstruction* const r = rs.ptr();
        std::uint32_t pen = begin_instr(e, op->fetch, a, b, r);
        vpc += 4 + static_cast<std::uint32_t>(e.instr.imm) * 4;
        pen += config_.jump_penalty;
        if constexpr (kPub) {
          r->total_cycles += config_.jump_penalty;
          r->redirect_cycles += config_.jump_penalty;
        }
        EXTEN_RETIRE(r, pen);
        goto block_done;
      }
      EXTEN_OP(kJal) {
        const PredecodedInstr& e = win[op->idx];
        const std::uint32_t a = kPub ? regs_[e.instr.rs1] : 0u;
        const std::uint32_t b = kPub ? regs_[e.instr.rs2] : 0u;
        threaded_detail::RecordStorage<kPub> rs;
        RetiredInstruction* const r = rs.ptr();
        std::uint32_t pen = begin_instr(e, op->fetch, a, b, r);
        const std::uint32_t link = vpc + 4;
        regs_[isa::kLinkRegister] = link;
        if constexpr (kPub) r->result = link;
        vpc = link + static_cast<std::uint32_t>(e.instr.imm) * 4;
        pen += config_.jump_penalty;
        if constexpr (kPub) {
          r->total_cycles += config_.jump_penalty;
          r->redirect_cycles += config_.jump_penalty;
        }
        EXTEN_RETIRE(r, pen);
        goto block_done;
      }
      EXTEN_OP(kJr) {
        const PredecodedInstr& e = win[op->idx];
        const std::uint32_t a = regs_[e.instr.rs1];
        const std::uint32_t b = kPub ? regs_[e.instr.rs2] : 0u;
        threaded_detail::RecordStorage<kPub> rs;
        RetiredInstruction* const r = rs.ptr();
        std::uint32_t pen = begin_instr(e, op->fetch, a, b, r);
        vpc = a;
        pen += config_.jump_penalty;
        if constexpr (kPub) {
          r->total_cycles += config_.jump_penalty;
          r->redirect_cycles += config_.jump_penalty;
        }
        EXTEN_RETIRE(r, pen);
        goto block_done;
      }
      EXTEN_OP(kJalr) {
        const PredecodedInstr& e = win[op->idx];
        const std::uint32_t a = regs_[e.instr.rs1];
        const std::uint32_t b = kPub ? regs_[e.instr.rs2] : 0u;
        threaded_detail::RecordStorage<kPub> rs;
        RetiredInstruction* const r = rs.ptr();
        std::uint32_t pen = begin_instr(e, op->fetch, a, b, r);
        const std::uint32_t link = vpc + 4;
        if (e.instr.rd != isa::kZeroRegister) regs_[e.instr.rd] = link;
        if constexpr (kPub) r->result = link;
        vpc = a;
        pen += config_.jump_penalty;
        if constexpr (kPub) {
          r->total_cycles += config_.jump_penalty;
          r->redirect_cycles += config_.jump_penalty;
        }
        EXTEN_RETIRE(r, pen);
        goto block_done;
      }

      EXTEN_BRANCH(kBeq, a == b)
      EXTEN_BRANCH(kBne, a != b)
      EXTEN_BRANCH(kBlt, as_signed(a) < as_signed(b))
      EXTEN_BRANCH(kBge, as_signed(a) >= as_signed(b))
      EXTEN_BRANCH(kBltu, a < b)
      EXTEN_BRANCH(kBgeu, a >= b)
      EXTEN_BRANCH_Z(kBeqz, a == 0)
      EXTEN_BRANCH_Z(kBnez, a != 0)

      EXTEN_OP(kNop) {
        const PredecodedInstr& e = win[op->idx];
        const std::uint32_t a = kPub ? regs_[e.instr.rs1] : 0u;
        const std::uint32_t b = kPub ? regs_[e.instr.rs2] : 0u;
        threaded_detail::RecordStorage<kPub> rs;
        RetiredInstruction* const r = rs.ptr();
        const std::uint32_t pen = begin_instr(e, op->fetch, a, b, r);
        vpc += 4;
        EXTEN_RETIRE(r, pen);
        EXTEN_NEXT();
      }
      EXTEN_OP(kHalt) {
        const PredecodedInstr& e = win[op->idx];
        const std::uint32_t a = kPub ? regs_[e.instr.rs1] : 0u;
        const std::uint32_t b = kPub ? regs_[e.instr.rs2] : 0u;
        threaded_detail::RecordStorage<kPub> rs;
        RetiredInstruction* const r = rs.ptr();
        const std::uint32_t pen = begin_instr(e, op->fetch, a, b, r);
        vpc += 4;
        EXTEN_RETIRE(r, pen);
        halted = true;
        goto block_done;
      }
      EXTEN_OP(kCustom) {
        const PredecodedInstr& e = win[op->idx];
        const std::uint32_t a = regs_[e.instr.rs1];
        const std::uint32_t b = regs_[e.instr.rs2];
        threaded_detail::RecordStorage<kPub> rs;
        RetiredInstruction* const r = rs.ptr();
        const std::uint32_t pen = begin_instr(e, op->fetch, a, b, r);
        do_custom(e, a, b, /*bytecode_known=*/false, r);
        vpc += 4;
        EXTEN_RETIRE(r, pen);
        EXTEN_NEXT();
      }

      EXTEN_OP(FuseCmpBranch) {
        // slt/sltu/slti/sltiu immediately consumed by beqz/bnez on the
        // register it wrote (builder guarantees rd != r0): the branch
        // condition comes straight from the compare result instead of a
        // register re-read. Both retirement records are still emitted.
        const PredecodedInstr& e1 = win[op->idx];
        const PredecodedInstr& e2 = win[op->idx + 1];
        std::uint32_t cmp;
        {
          const std::uint32_t a = regs_[e1.instr.rs1];
          const std::uint32_t b = regs_[e1.instr.rs2];
          threaded_detail::RecordStorage<kPub> rs;
          RetiredInstruction* const r = rs.ptr();
          const std::uint32_t pen = begin_instr(e1, op->fetch, a, b, r);
          switch (e1.instr.op) {
            case isa::Opcode::kSlt:
              cmp = as_signed(a) < as_signed(b) ? 1u : 0u;
              break;
            case isa::Opcode::kSltu:
              cmp = a < b ? 1u : 0u;
              break;
            case isa::Opcode::kSlti:
              cmp = as_signed(a) < e1.instr.imm ? 1u : 0u;
              break;
            default:  // kSltiu — the builder admits no other compare
              cmp = a < static_cast<std::uint32_t>(e1.instr.imm) ? 1u : 0u;
              break;
          }
          regs_[e1.instr.rd] = cmp;
          if constexpr (kPub) r->result = cmp;
          vpc += 4;
          EXTEN_RETIRE(r, pen);
        }
        bool taken;
        {
          threaded_detail::RecordStorage<kPub> rs;
          RetiredInstruction* const r = rs.ptr();
          const std::uint32_t b2 = kPub ? regs_[e2.instr.rs2] : 0u;
          std::uint32_t pen = begin_instr(e2, op->fetch2, cmp, b2, r);
          taken = e2.instr.op == isa::Opcode::kBnez ? cmp != 0 : cmp == 0;
          pen += do_branch(e2, taken, r);
          EXTEN_RETIRE(r, pen);
        }
        ++fused_acc;
        if (!taken) EXTEN_NEXT();
        goto block_done;
      }
      EXTEN_OP(FuseLoadUse) {
        // lw + dependent base-ALU consumer. The load half is inline; the
        // consumer half reuses the force-inlined generic execute() (its
        // interlock fires naturally through pending_load_rd_). execute()
        // works on the member pc_, so the block-local pc is synced around
        // it; it always needs a real record as its working buffer.
        const PredecodedInstr& e1 = win[op->idx];
        const PredecodedInstr& e2 = win[op->idx + 1];
        {
          const std::uint32_t a = regs_[e1.instr.rs1];
          const std::uint32_t b = kPub ? regs_[e1.instr.rs2] : 0u;
          threaded_detail::RecordStorage<kPub> rs;
          RetiredInstruction* const r = rs.ptr();
          std::uint32_t pen = begin_instr(e1, op->fetch, a, b, r);
          pen += do_load(e1, a, 4, false, r);
          vpc += 4;
          EXTEN_RETIRE(r, pen);
        }
        {
          RetiredInstruction r;
          const std::uint32_t pen =
              begin_instr(e2, op->fetch2, regs_[e2.instr.rs1],
                          regs_[e2.instr.rs2], &r);
          pc_ = vpc;
          execute(e2.instr, nullptr, &r);
          vpc = pc_;
          if constexpr (kPub) {
            extra += r.total_cycles - r.base_cycles;
            sink.on_retire(r);
          } else {
            // begin_instr charged `pen` without touching the record, so
            // the record's own delta only holds execute()'s penalties.
            extra += pen + (r.total_cycles - r.base_cycles);
          }
          ++done;
        }
        ++fused_acc;
        EXTEN_NEXT();
      }
      EXTEN_OP(FuseCustomPair) {
        // Back-to-back customs, both known at build time to carry compiled
        // bytecode: one handler, two direct entries into the bytecode VM.
        const PredecodedInstr& e1 = win[op->idx];
        const PredecodedInstr& e2 = win[op->idx + 1];
        {
          const std::uint32_t a = regs_[e1.instr.rs1];
          const std::uint32_t b = regs_[e1.instr.rs2];
          threaded_detail::RecordStorage<kPub> rs;
          RetiredInstruction* const r = rs.ptr();
          const std::uint32_t pen = begin_instr(e1, op->fetch, a, b, r);
          do_custom(e1, a, b, /*bytecode_known=*/true, r);
          vpc += 4;
          EXTEN_RETIRE(r, pen);
        }
        {
          const std::uint32_t a = regs_[e2.instr.rs1];
          const std::uint32_t b = regs_[e2.instr.rs2];
          threaded_detail::RecordStorage<kPub> rs;
          RetiredInstruction* const r = rs.ptr();
          const std::uint32_t pen = begin_instr(e2, op->fetch2, a, b, r);
          do_custom(e2, a, b, /*bytecode_known=*/true, r);
          vpc += 4;
          EXTEN_RETIRE(r, pen);
        }
        ++fused_acc;
        EXTEN_NEXT();
      }
      EXTEN_FUSE_ALU_ALU(FuseSlliAdd, false, a << (e.instr.imm & 31), true,
                         a + b)
      EXTEN_FUSE_ALU_ALU(FuseAddiAddi, false,
                         a + static_cast<std::uint32_t>(e.instr.imm), false,
                         a + static_cast<std::uint32_t>(e.instr.imm))
      EXTEN_FUSE_ALU_ALU(FuseAddiSlli, false,
                         a + static_cast<std::uint32_t>(e.instr.imm), false,
                         a << (e.instr.imm & 31))
      EXTEN_FUSE_ALU_ALU(FuseLuiOri, false,
                         static_cast<std::uint32_t>(e.instr.imm), false,
                         a | static_cast<std::uint32_t>(e.instr.imm))
      EXTEN_FUSE_ALU_J(FuseSubJ, true, a - b)
      EXTEN_FUSE_ALU_J(FuseAddiJ, false,
                       a + static_cast<std::uint32_t>(e.instr.imm))

      EXTEN_OP(FuseLwLw) {
        // Two adjacent loads; the second half reads its base register only
        // after the first retires, and a base-address dependence on the
        // first load's rd interlocks through `pending` as usual.
        const PredecodedInstr& e1 = win[op->idx];
        const PredecodedInstr& e2 = win[op->idx + 1];
        {
          const std::uint32_t a = regs_[e1.instr.rs1];
          const std::uint32_t b = kPub ? regs_[e1.instr.rs2] : 0u;
          threaded_detail::RecordStorage<kPub> rs;
          RetiredInstruction* const r = rs.ptr();
          std::uint32_t pen = begin_instr(e1, op->fetch, a, b, r);
          pen += do_load(e1, a, 4, false, r);
          vpc += 4;
          EXTEN_RETIRE(r, pen);
        }
        {
          const std::uint32_t a = regs_[e2.instr.rs1];
          const std::uint32_t b = kPub ? regs_[e2.instr.rs2] : 0u;
          threaded_detail::RecordStorage<kPub> rs;
          RetiredInstruction* const r = rs.ptr();
          std::uint32_t pen = begin_instr(e2, op->fetch2, a, b, r);
          pen += do_load(e2, a, 4, false, r);
          vpc += 4;
          EXTEN_RETIRE(r, pen);
        }
        ++fused_acc;
        EXTEN_NEXT();
      }
      EXTEN_OP(FuseLwBranch) {
        // lw + any conditional branch (typically testing the value the
        // load just produced — the interlock fires through `pending`
        // exactly as in the unfused form).
        const PredecodedInstr& e1 = win[op->idx];
        const PredecodedInstr& e2 = win[op->idx + 1];
        {
          const std::uint32_t a = regs_[e1.instr.rs1];
          const std::uint32_t b = kPub ? regs_[e1.instr.rs2] : 0u;
          threaded_detail::RecordStorage<kPub> rs;
          RetiredInstruction* const r = rs.ptr();
          std::uint32_t pen = begin_instr(e1, op->fetch, a, b, r);
          pen += do_load(e1, a, 4, false, r);
          vpc += 4;
          EXTEN_RETIRE(r, pen);
        }
        bool taken;
        {
          const std::uint32_t a = regs_[e2.instr.rs1];
          const std::uint32_t b = regs_[e2.instr.rs2];
          threaded_detail::RecordStorage<kPub> rs;
          RetiredInstruction* const r = rs.ptr();
          std::uint32_t pen = begin_instr(e2, op->fetch2, a, b, r);
          switch (e2.instr.op) {
            case isa::Opcode::kBeq: taken = a == b; break;
            case isa::Opcode::kBne: taken = a != b; break;
            case isa::Opcode::kBlt: taken = as_signed(a) < as_signed(b); break;
            case isa::Opcode::kBge:
              taken = as_signed(a) >= as_signed(b);
              break;
            case isa::Opcode::kBltu: taken = a < b; break;
            case isa::Opcode::kBgeu: taken = a >= b; break;
            case isa::Opcode::kBeqz: taken = a == 0; break;
            default: taken = a != 0; break;  // kBnez — Branch class is closed
          }
          pen += do_branch(e2, taken, r);
          EXTEN_RETIRE(r, pen);
        }
        ++fused_acc;
        if (!taken) EXTEN_NEXT();
        goto block_done;
      }

      EXTEN_OP(FuseBeqBltu) {
        // Compare ladder (beq exits, bltu picks a side): both halves are
        // branches, so a taken *first* half is a mid-op exit through
        // block_done_partial while a taken second half is a normal
        // whole-op exit through the deferred exit-count slot.
        const PredecodedInstr& e1 = win[op->idx];
        const PredecodedInstr& e2 = win[op->idx + 1];
        {
          const std::uint32_t a = regs_[e1.instr.rs1];
          const std::uint32_t b = regs_[e1.instr.rs2];
          threaded_detail::RecordStorage<kPub> rs;
          RetiredInstruction* const r = rs.ptr();
          std::uint32_t pen = begin_instr(e1, op->fetch, a, b, r);
          const bool taken = a == b;
          pen += do_branch(e1, taken, r);
          EXTEN_RETIRE(r, pen);
          if (taken) [[unlikely]] goto block_done_partial;
        }
        {
          const std::uint32_t a = regs_[e2.instr.rs1];
          const std::uint32_t b = regs_[e2.instr.rs2];
          threaded_detail::RecordStorage<kPub> rs;
          RetiredInstruction* const r = rs.ptr();
          std::uint32_t pen = begin_instr(e2, op->fetch2, a, b, r);
          const bool taken = a < b;
          pen += do_branch(e2, taken, r);
          EXTEN_RETIRE(r, pen);
          ++fused_acc;
          if (!taken) EXTEN_NEXT();
          goto block_done;
        }
      }
      EXTEN_FUSE_BRANCH_ALU(FuseBgeSlli, true,
                            as_signed(a) >= as_signed(b), false,
                            a << (e.instr.imm & 31))
      EXTEN_FUSE_BRANCH_ALU(FuseBeqzAddi, false, a == 0, false,
                            a + static_cast<std::uint32_t>(e.instr.imm))
      EXTEN_OP(FuseAddLw) {
        // add + lw: indexed-load idiom. An address dependence on the add's
        // rd is safe — the second half reads registers only after the
        // first half's write (and a load-use interlock on a *preceding*
        // load still fires through `pending` in begin_instr).
        const PredecodedInstr& e1 = win[op->idx];
        const PredecodedInstr& e2 = win[op->idx + 1];
        EXTEN_FUSE_ALU_HALF(e1, op->fetch, true, a + b)
        {
          const std::uint32_t a = regs_[e2.instr.rs1];
          const std::uint32_t b = kPub ? regs_[e2.instr.rs2] : 0u;
          threaded_detail::RecordStorage<kPub> rs;
          RetiredInstruction* const r = rs.ptr();
          std::uint32_t pen = begin_instr(e2, op->fetch2, a, b, r);
          pen += do_load(e2, a, 4, false, r);
          vpc += 4;
          EXTEN_RETIRE(r, pen);
        }
        ++fused_acc;
        EXTEN_NEXT();
      }
      EXTEN_OP(FuseAddSw) {
        // add + sw: indexed-store idiom. Only the trailing store can
        // invalidate the block, so the validity test sits where the
        // unfused EXTEN_STORE puts it — after both halves retired.
        const PredecodedInstr& e1 = win[op->idx];
        const PredecodedInstr& e2 = win[op->idx + 1];
        EXTEN_FUSE_ALU_HALF(e1, op->fetch, true, a + b)
        EXTEN_FUSE_STORE_HALF(e2, op->fetch2)
        ++fused_acc;
        if (sb->valid) [[likely]] EXTEN_NEXT();
        goto block_done;
      }
      EXTEN_OP(FuseSwAddi) {
        // sw + addi: store-then-bump-index idiom. The *first* half is the
        // store, so it can overwrite the fused addi's own word: if it
        // killed the block, exit before the second half runs — done holds
        // the half-op retirement count and the store-kill path attributes
        // the odd prefix exactly. Only a both-halves execution counts as
        // a fused dispatch.
        const PredecodedInstr& e1 = win[op->idx];
        const PredecodedInstr& e2 = win[op->idx + 1];
        EXTEN_FUSE_STORE_HALF(e1, op->fetch)
        if (!sb->valid) [[unlikely]] goto block_done;
        EXTEN_FUSE_ALU_HALF(e2, op->fetch2, false,
                            a + static_cast<std::uint32_t>(e.instr.imm))
        ++fused_acc;
        EXTEN_NEXT();
      }
      EXTEN_OP(FuseSwSw) {
        // Two adjacent stores; either may kill the block, so each half is
        // followed by its own validity exit.
        const PredecodedInstr& e1 = win[op->idx];
        const PredecodedInstr& e2 = win[op->idx + 1];
        EXTEN_FUSE_STORE_HALF(e1, op->fetch)
        if (!sb->valid) [[unlikely]] goto block_done;
        EXTEN_FUSE_STORE_HALF(e2, op->fetch2)
        ++fused_acc;
        if (sb->valid) [[likely]] EXTEN_NEXT();
        goto block_done;
      }

      EXTEN_OP(BlockEnd) { goto block_done; }

#if !EXTEN_THREADED_COMPUTED_GOTO
        default:
          EXTEN_CHECK(false, "threaded dispatch: invalid superop kind ",
                      static_cast<unsigned>(op->kind));
      }
#endif

    block_done:;
      // Block epilogue. It lives inside the try so the tight-loop fast
      // path below can legally re-enter the dispatch; everything here is
      // nonthrowing integer accounting, so a fault can never reach the
      // catch with a half-applied epilogue.
      executed += done;
      hot_instrs += done;
      hot_blocks += 1;
      extra_acc += extra;
      if (done == sb->n_instr) {
        if (sb->valid) [[likely]] {
          // Full execution of a live block: the whole static attribution
          // (base cycles, class counts, elided hits) is one counter bump,
          // expanded by harvest_block_counts at run exit.
          ++sb->exec_full;
        } else {
          // Fully executed, but the block's own final store invalidated
          // it; the slot may be recycled before the next harvest, so
          // attribute the static sums directly.
          cycles_ += sb->static_cycles;
          icache_.add_hits(sb->n_elided);
          for (std::size_t c = 0; c < sb->class_counts.size(); ++c) {
            threaded_counters_.class_instrs[c] += sb->class_counts[c];
          }
        }
      } else if (sb->valid) [[likely]] {
        // Early exit via a taken conditional branch (the only way a live
        // block retires fewer than n_instr instructions): defer the
        // prefix attribution — harvest_block_counts expands count *
        // prefix per exit op. `op` still points at the exiting branch.
        ++sb->exit_counts[static_cast<std::size_t>(op - sb->ops.data())];
        ++sb->exec_exits;
      } else {
        // A store invalidated this block mid-flight: attribute the
        // executed prefix (the entries still hold the pre-store decode,
        // which is what actually ran — the stale refresh happens on next
        // fetch).
        cycles_ += predecode_.block_base_prefix(*sb, done);
        icache_.add_hits(predecode_.count_elided_prefix(*sb, done));
        predecode_.add_class_prefix(*sb, done,
                                    threaded_counters_.class_instrs.data());
      }
      goto chain_check;

    block_done_partial:;
      // Mid-op exit of a live block — a fused pair whose first (branch)
      // half took. The odd instruction prefix cannot ride an exit-count
      // slot (those encode whole-op prefixes), so attribute it eagerly,
      // exactly like the store-kill path above.
      executed += done;
      hot_instrs += done;
      hot_blocks += 1;
      extra_acc += extra;
      cycles_ += predecode_.block_base_prefix(*sb, done);
      icache_.add_hits(predecode_.count_elided_prefix(*sb, done));
      predecode_.add_class_prefix(*sb, done,
                                  threaded_counters_.class_instrs.data());

    chain_check:;
      // Tight-loop fast path: a backedge landing on this block's own
      // entry re-dispatches directly, skipping the loop-top window /
      // block-id lookup. The guards mirror the loop top: the block must
      // still be live and must fit the remaining instruction budget.
      // (Chaining to *other* blocks from here measures slower than the
      // loop top — the extra inline lookup dilutes the hot path.)
      if (!halted && vpc == bpc && sb->valid &&
          sb->n_instr <= max_instructions - executed) {
        op = sb->ops.data();
        done = 0;
        extra = 0;
#if EXTEN_THREADED_COMPUTED_GOTO
        goto* kDispatch[op->kind];
#else
        goto dispatch_next;
#endif
      }
      pc = vpc;
    } catch (...) {
      // Simulation fault mid-block (e.g. a TIE semantic fault): flush the
      // completed prefix so cycles and block-level counts reflect exactly
      // the instructions that retired — identical to the fast engine,
      // which accumulates per instruction and never counts the faulting
      // one. pc_ is parked on the faulting instruction, whose fetch *was*
      // performed before the fault (hence done + 1 in the elided-hit
      // prefix — the fast engine's fetch-then-execute order). The
      // run-level accumulators are flushed by the scope guard as the
      // exception leaves the run.
      pc_ = vpc;
      pending_load_rd_ = pending;
      executed += done;
      hot_instrs += done;
      hot_blocks += 1;
      extra_acc += extra;
      cycles_ += predecode_.block_base_prefix(*sb, done);
      icache_.add_hits(predecode_.count_elided_prefix(*sb, done + 1));
      predecode_.add_class_prefix(*sb, done,
                                  threaded_counters_.class_instrs.data());
      throw;
    }

    if (halted) {
      result.halted = true;
      break;
    }
  }

  pc_ = pc;
  pending_load_rd_ = pending;
  flush_run_totals();
  result.instructions = executed;
  result.cycles = cycles_;
  sink.on_run_end(result.instructions, result.cycles);
  if (run_span.armed()) {
    run_span.add_counter("instructions", result.instructions);
    run_span.add_counter("cycles", result.cycles);
    if (tie_exec_count_ > tie_count_before) {
      obs::emit_span(obs::Category::kTie, "tie_execute", 0, run_start_ns,
                     tie_exec_ns_ - tie_ns_before, "custom_ops",
                     tie_exec_count_ - tie_count_before);
    }
  }
  EXTEN_CHECK(result.halted, "instruction budget of ", max_instructions,
              " exhausted without HALT (runaway program at pc=0x", std::hex,
              pc_, ")");
  return result;
}

#undef EXTEN_SOP_OPCODES
#undef EXTEN_OP
#undef EXTEN_NEXT
#undef EXTEN_RETIRE
#undef EXTEN_ALU
#undef EXTEN_ALU_IMM
#undef EXTEN_LOAD
#undef EXTEN_STORE
#undef EXTEN_BRANCH
#undef EXTEN_BRANCH_Z
#undef EXTEN_FUSE_ALU_HALF
#undef EXTEN_FUSE_STORE_HALF
#undef EXTEN_FUSE_BRANCH_ALU
#undef EXTEN_FUSE_ALU_ALU
#undef EXTEN_FUSE_ALU_J

}  // namespace exten::sim
