#pragma once

// Sparse byte-addressable memory for the simulator.
//
// Memory is organized as 4 KiB pages allocated on first touch, so a 32-bit
// address space costs only what the program actually uses. Reads of
// untouched memory return zero. Accesses must be naturally aligned;
// misaligned accesses throw (the processor would raise an alignment fault).
//
// Thread safety: one Memory belongs to one Cpu and is confined to its
// thread.

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/program.h"
#include "util/error.h"

namespace exten::sim {

class Memory {
 public:
  static constexpr std::uint32_t kPageBytes = 4096;

  /// Caller-owned memo of the last page a `_via` accessor touched. Pages are
  /// never erased and a page's storage never moves after creation
  /// (unordered_map references are stable across rehash; the backing vector
  /// is sized exactly once), so a cached pointer stays valid for the life of
  /// the Memory. Absent pages are never cached, so a page created later —
  /// by a store, load(), or an external write — is always observed.
  struct PageRef {
    std::uint32_t id = 0xFFFFFFFFu;
    std::uint8_t* bytes = nullptr;
  };

  std::uint8_t read8(std::uint32_t addr) const;
  std::uint16_t read16(std::uint32_t addr) const;
  std::uint32_t read32(std::uint32_t addr) const;

  void write8(std::uint32_t addr, std::uint8_t value);
  void write16(std::uint32_t addr, std::uint16_t value);
  void write32(std::uint32_t addr, std::uint32_t value);

  // Memoized variants of the accessors above for a hot loop issuing many
  // data accesses: same-page accesses skip the hash lookup. Results are
  // identical to the plain accessors in every case.

  std::uint8_t read8_via(PageRef& ref, std::uint32_t addr) {
    const std::uint8_t* page = page_for_read(ref, addr);
    return page ? page[addr % kPageBytes] : 0;
  }

  std::uint16_t read16_via(PageRef& ref, std::uint32_t addr) {
    check_aligned(addr, 2);
    const std::uint8_t* page = page_for_read(ref, addr);
    if (page == nullptr) return 0;
    const std::size_t off = addr % kPageBytes;
    return static_cast<std::uint16_t>(
        page[off] | (static_cast<std::uint16_t>(page[off + 1]) << 8));
  }

  std::uint32_t read32_via(PageRef& ref, std::uint32_t addr) {
    check_aligned(addr, 4);
    const std::uint8_t* page = page_for_read(ref, addr);
    if (page == nullptr) return 0;
    const std::size_t off = addr % kPageBytes;
    return static_cast<std::uint32_t>(page[off]) |
           (static_cast<std::uint32_t>(page[off + 1]) << 8) |
           (static_cast<std::uint32_t>(page[off + 2]) << 16) |
           (static_cast<std::uint32_t>(page[off + 3]) << 24);
  }

  void write8_via(PageRef& ref, std::uint32_t addr, std::uint8_t value) {
    page_for_write(ref, addr)[addr % kPageBytes] = value;
  }

  void write16_via(PageRef& ref, std::uint32_t addr, std::uint16_t value) {
    check_aligned(addr, 2);
    std::uint8_t* page = page_for_write(ref, addr);
    const std::size_t off = addr % kPageBytes;
    page[off] = static_cast<std::uint8_t>(value);
    page[off + 1] = static_cast<std::uint8_t>(value >> 8);
  }

  void write32_via(PageRef& ref, std::uint32_t addr, std::uint32_t value) {
    check_aligned(addr, 4);
    std::uint8_t* page = page_for_write(ref, addr);
    const std::size_t off = addr % kPageBytes;
    page[off] = static_cast<std::uint8_t>(value);
    page[off + 1] = static_cast<std::uint8_t>(value >> 8);
    page[off + 2] = static_cast<std::uint8_t>(value >> 16);
    page[off + 3] = static_cast<std::uint8_t>(value >> 24);
  }

  /// Copies every segment of a program image into memory (bulk per-page
  /// copies, not byte-by-byte stores).
  void load(const isa::ProgramImage& image);

  /// Number of resident pages (for tests / diagnostics).
  std::size_t resident_pages() const { return pages_.size(); }

  /// Resident page ids in ascending order. Together with page_bytes this
  /// gives a deterministic full-memory walk (the differential fuzz oracle
  /// digests all of memory after a run this way).
  std::vector<std::uint32_t> resident_page_ids() const;

  /// Read access to one resident page's kPageBytes bytes; nullptr when the
  /// page was never touched (its contents read as zero).
  const std::uint8_t* page_bytes(std::uint32_t page_id) const;

 private:
  using Page = std::vector<std::uint8_t>;

  static void check_aligned(std::uint32_t addr, std::uint32_t size) {
    EXTEN_CHECK((addr & (size - 1)) == 0, "alignment fault: ", size,
                "-byte access at 0x", std::hex, addr);
  }

  const Page* find_page(std::uint32_t addr) const {
    auto it = pages_.find(addr / kPageBytes);
    return it == pages_.end() ? nullptr : &it->second;
  }

  Page& touch_page(std::uint32_t addr) {
    Page& page = pages_[addr / kPageBytes];
    if (page.empty()) page.resize(kPageBytes, 0);
    return page;
  }

  std::uint8_t* page_for_read(PageRef& ref, std::uint32_t addr) {
    const std::uint32_t id = addr / kPageBytes;
    if (id == ref.id) return ref.bytes;
    auto it = pages_.find(id);
    if (it == pages_.end()) return nullptr;  // absent: read as zero, no memo
    ref.id = id;
    ref.bytes = it->second.data();
    return ref.bytes;
  }

  std::uint8_t* page_for_write(PageRef& ref, std::uint32_t addr) {
    const std::uint32_t id = addr / kPageBytes;
    if (id == ref.id) return ref.bytes;
    Page& page = touch_page(addr);
    ref.id = id;
    ref.bytes = page.data();
    return ref.bytes;
  }

  std::unordered_map<std::uint32_t, Page> pages_;
};

}  // namespace exten::sim
