#pragma once

// Sparse byte-addressable memory for the simulator.
//
// Memory is organized as 4 KiB pages allocated on first touch, so a 32-bit
// address space costs only what the program actually uses. Reads of
// untouched memory return zero. Accesses must be naturally aligned;
// misaligned accesses throw (the processor would raise an alignment fault).

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/program.h"

namespace exten::sim {

class Memory {
 public:
  static constexpr std::uint32_t kPageBytes = 4096;

  std::uint8_t read8(std::uint32_t addr) const;
  std::uint16_t read16(std::uint32_t addr) const;
  std::uint32_t read32(std::uint32_t addr) const;

  void write8(std::uint32_t addr, std::uint8_t value);
  void write16(std::uint32_t addr, std::uint16_t value);
  void write32(std::uint32_t addr, std::uint32_t value);

  /// Copies every segment of a program image into memory.
  void load(const isa::ProgramImage& image);

  /// Number of resident pages (for tests / diagnostics).
  std::size_t resident_pages() const { return pages_.size(); }

 private:
  using Page = std::vector<std::uint8_t>;

  const Page* find_page(std::uint32_t addr) const;
  Page& touch_page(std::uint32_t addr);

  std::unordered_map<std::uint32_t, Page> pages_;
};

}  // namespace exten::sim
