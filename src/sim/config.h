#pragma once

// Processor configuration: the "configurable options" of the extensible
// processor (paper §II). Defaults model the paper's Xtensa T1040 setup:
// 187 MHz, 64x32b register file, 4-way 16 KiB instruction and data caches.

#include <cstdint>

#include "sim/cache.h"

namespace exten::sim {

/// Timing and structural parameters of the base processor.
struct ProcessorConfig {
  /// Clock frequency (used to convert cycle counts to time in reports).
  double clock_mhz = 187.0;

  CacheConfig icache;
  CacheConfig dcache;

  /// Extra cycles on an instruction-cache miss (line refill from memory).
  unsigned icache_miss_penalty = 18;
  /// Extra cycles on a data-cache load miss.
  unsigned dcache_miss_penalty = 18;
  /// Extra cycles for an uncached instruction fetch (device region).
  unsigned uncached_fetch_penalty = 9;
  /// Extra cycles for an uncached data access.
  unsigned uncached_data_penalty = 9;

  /// Pipeline bubbles after a taken branch (fetch redirect).
  unsigned taken_branch_penalty = 2;
  /// Pipeline bubbles after an unconditional jump.
  unsigned jump_penalty = 1;
  /// Stall cycles for a load-use interlock (consumer immediately follows
  /// the producing load).
  unsigned load_use_interlock = 1;

  /// Addresses at or above this bypass the caches.
  std::uint32_t uncached_base = 0x8000'0000;

  bool is_uncached(std::uint32_t addr) const { return addr >= uncached_base; }
};

}  // namespace exten::sim
