#include "sim/cpu.h"

#include "util/error.h"

namespace exten::sim {

namespace {

/// Statically-typed sink forwarding to the registered observer list, so
/// run() and run_with_sink() share one loop.
struct ObserverListSink {
  const std::vector<RetireObserver*>& observers;

  void on_run_begin() {
    for (RetireObserver* obs : observers) obs->on_run_begin();
  }
  void on_retire(const RetiredInstruction& retired) {
    for (RetireObserver* obs : observers) obs->on_retire(retired);
  }
  void on_run_end(std::uint64_t instructions, std::uint64_t cycles) {
    for (RetireObserver* obs : observers) obs->on_run_end(instructions, cycles);
  }
};

}  // namespace

Cpu::Cpu(const ProcessorConfig& config, const tie::TieConfiguration& tie,
         Engine engine)
    : config_(config),
      tie_(tie),
      icache_(config.icache),
      dcache_(config.dcache),
      tie_state_(tie.make_state()),
      engine_(engine) {}

void Cpu::load_program(const isa::ProgramImage& image) {
  obs::ScopedSpan span(obs::Category::kEngine, "predecode");
  memory_.load(image);
  load_page_ = Memory::PageRef{};
  store_page_ = Memory::PageRef{};
  predecode_.build(image, tie_);
  pc_ = image.entry_point();
  set_reg(isa::kStackRegister, isa::kStackTop);
  span.add_counter("text_words",
                   static_cast<std::uint64_t>(predecode_.size()));
}

void Cpu::add_observer(RetireObserver* observer) {
  EXTEN_CHECK(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

std::uint32_t Cpu::reg(unsigned index) const {
  EXTEN_CHECK(index < isa::kNumRegisters, "register index ", index,
              " out of range");
  return index == isa::kZeroRegister ? 0 : regs_[index];
}

void Cpu::set_reg(unsigned index, std::uint32_t value) {
  EXTEN_CHECK(index < isa::kNumRegisters, "register index ", index,
              " out of range");
  if (index != isa::kZeroRegister) regs_[index] = value;
}

RunResult Cpu::run(std::uint64_t max_instructions) {
  ObserverListSink sink{observers_};
  return run_with_sink(sink, max_instructions);
}

std::uint32_t Cpu::fetch(RetiredInstruction* retired) {
  const std::uint32_t fetch_pc = pc_;
  EXTEN_CHECK((fetch_pc & 3) == 0, "fetch alignment fault at pc=0x", std::hex,
              fetch_pc);
  if (config_.is_uncached(fetch_pc)) {
    retired->uncached_fetch = true;
    retired->total_cycles += config_.uncached_fetch_penalty;
    retired->memory_stall_cycles += config_.uncached_fetch_penalty;
  } else if (icache_.access(fetch_pc) == CacheOutcome::kMiss) {
    retired->icache_miss = true;
    retired->total_cycles += config_.icache_miss_penalty;
    retired->memory_stall_cycles += config_.icache_miss_penalty;
  }
  return memory_.read32(fetch_pc);
}

bool Cpu::step_reference(RetiredInstruction* retired) {
  retired->pc = pc_;
  retired->base_cycles = 1;
  retired->total_cycles = 1;

  const std::uint32_t word = fetch(retired);
  const isa::DecodedInstr d = isa::decode(word);
  retired->instr = d;
  retired->cls = isa::opcode_info(d.op).cls;

  // Load-use interlock: the previous instruction was a load whose result
  // this instruction consumes in its first EX cycle.
  const isa::OpcodeInfo& info = isa::opcode_info(d.op);
  const bool custom_reads_rs1 =
      d.op == isa::Opcode::kCustom && tie_.instruction(d.func).reads_rs1;
  const bool custom_reads_rs2 =
      d.op == isa::Opcode::kCustom && tie_.instruction(d.func).reads_rs2;
  const bool reads_rs1 =
      (d.op == isa::Opcode::kCustom ? custom_reads_rs1 : info.reads_rs1);
  const bool reads_rs2 =
      (d.op == isa::Opcode::kCustom ? custom_reads_rs2 : info.reads_rs2);
  if (pending_load_rd_ != isa::kNumRegisters &&
      pending_load_rd_ != isa::kZeroRegister &&
      ((reads_rs1 && d.rs1 == pending_load_rd_) ||
       (reads_rs2 && d.rs2 == pending_load_rd_))) {
    retired->interlock_cycles = config_.load_use_interlock;
    retired->total_cycles += config_.load_use_interlock;
  }
  pending_load_rd_ = isa::kNumRegisters;

  execute(d, nullptr, retired);
  return d.op != isa::Opcode::kHalt;
}

bool Cpu::step_fast_cold(const PredecodedInstr* p, RetiredInstruction* retired) {
  if (p->status == PredecodedInstr::kStale) {
    // Self-modifying code overwrote this word: re-decode it from memory.
    p = predecode_.refresh(pc_, memory_.read32(pc_), tie_);
  }
  // Illegal words (before or after refresh) take the reference path so
  // the fault is raised with the original message.
  if (p->status != PredecodedInstr::kReady) return step_reference(retired);
  return dispatch_predecoded(p, retired);
}


}  // namespace exten::sim
