#include "sim/cpu.h"

#include "util/error.h"

namespace exten::sim {

namespace {

std::int32_t as_signed(std::uint32_t v) { return static_cast<std::int32_t>(v); }

}  // namespace

Cpu::Cpu(const ProcessorConfig& config, const tie::TieConfiguration& tie)
    : config_(config),
      tie_(tie),
      icache_(config.icache),
      dcache_(config.dcache),
      tie_state_(tie.make_state()) {}

void Cpu::load_program(const isa::ProgramImage& image) {
  memory_.load(image);
  pc_ = image.entry_point();
  set_reg(isa::kStackRegister, isa::kStackTop);
}

void Cpu::add_observer(RetireObserver* observer) {
  EXTEN_CHECK(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

std::uint32_t Cpu::reg(unsigned index) const {
  EXTEN_CHECK(index < isa::kNumRegisters, "register index ", index,
              " out of range");
  return index == isa::kZeroRegister ? 0 : regs_[index];
}

void Cpu::set_reg(unsigned index, std::uint32_t value) {
  EXTEN_CHECK(index < isa::kNumRegisters, "register index ", index,
              " out of range");
  if (index != isa::kZeroRegister) regs_[index] = value;
}

RunResult Cpu::run(std::uint64_t max_instructions) {
  for (RetireObserver* obs : observers_) obs->on_run_begin();

  RunResult result;
  while (result.instructions < max_instructions) {
    RetiredInstruction retired;
    const bool keep_going = step(&retired);
    ++result.instructions;
    cycles_ += retired.total_cycles;
    for (RetireObserver* obs : observers_) obs->on_retire(retired);
    if (!keep_going) {
      result.halted = true;
      break;
    }
  }
  result.cycles = cycles_;
  for (RetireObserver* obs : observers_) {
    obs->on_run_end(result.instructions, result.cycles);
  }
  EXTEN_CHECK(result.halted, "instruction budget of ", max_instructions,
              " exhausted without HALT (runaway program at pc=0x", std::hex,
              pc_, ")");
  return result;
}

std::uint32_t Cpu::fetch(RetiredInstruction* retired) {
  const std::uint32_t fetch_pc = pc_;
  EXTEN_CHECK((fetch_pc & 3) == 0, "fetch alignment fault at pc=0x", std::hex,
              fetch_pc);
  if (config_.is_uncached(fetch_pc)) {
    retired->uncached_fetch = true;
    retired->total_cycles += config_.uncached_fetch_penalty;
    retired->memory_stall_cycles += config_.uncached_fetch_penalty;
  } else if (icache_.access(fetch_pc) == CacheOutcome::kMiss) {
    retired->icache_miss = true;
    retired->total_cycles += config_.icache_miss_penalty;
    retired->memory_stall_cycles += config_.icache_miss_penalty;
  }
  return memory_.read32(fetch_pc);
}

bool Cpu::step(RetiredInstruction* retired) {
  retired->pc = pc_;
  retired->base_cycles = 1;
  retired->total_cycles = 1;

  const std::uint32_t word = fetch(retired);
  const isa::DecodedInstr d = isa::decode(word);
  retired->instr = d;
  retired->cls = isa::opcode_info(d.op).cls;

  // Load-use interlock: the previous instruction was a load whose result
  // this instruction consumes in its first EX cycle.
  const isa::OpcodeInfo& info = isa::opcode_info(d.op);
  const bool custom_reads_rs1 =
      d.op == isa::Opcode::kCustom && tie_.instruction(d.func).reads_rs1;
  const bool custom_reads_rs2 =
      d.op == isa::Opcode::kCustom && tie_.instruction(d.func).reads_rs2;
  const bool reads_rs1 =
      (d.op == isa::Opcode::kCustom ? custom_reads_rs1 : info.reads_rs1);
  const bool reads_rs2 =
      (d.op == isa::Opcode::kCustom ? custom_reads_rs2 : info.reads_rs2);
  if (pending_load_rd_ != isa::kNumRegisters &&
      pending_load_rd_ != isa::kZeroRegister &&
      ((reads_rs1 && d.rs1 == pending_load_rd_) ||
       (reads_rs2 && d.rs2 == pending_load_rd_))) {
    retired->interlock_cycles = config_.load_use_interlock;
    retired->total_cycles += config_.load_use_interlock;
  }
  pending_load_rd_ = isa::kNumRegisters;

  execute(d, retired);
  return d.op != isa::Opcode::kHalt;
}

void Cpu::execute(const isa::DecodedInstr& d, RetiredInstruction* retired) {
  using isa::Opcode;
  const std::uint32_t a = reg(d.rs1);
  const std::uint32_t b = reg(d.rs2);
  retired->rs1_value = a;
  retired->rs2_value = b;
  const std::uint32_t next_pc = pc_ + 4;
  std::uint32_t target = next_pc;

  auto write_rd = [&](std::uint32_t value) {
    set_reg(d.rd, value);
    retired->result = value;
  };
  auto do_load = [&](unsigned bytes, bool sign) {
    const std::uint32_t addr = a + static_cast<std::uint32_t>(d.imm);
    retired->mem_addr = addr;
    retired->is_mem = true;
    if (config_.is_uncached(addr)) {
      retired->uncached_data = true;
      retired->total_cycles += config_.uncached_data_penalty;
      retired->memory_stall_cycles += config_.uncached_data_penalty;
    } else if (dcache_.access(addr) == CacheOutcome::kMiss) {
      retired->dcache_miss = true;
      retired->total_cycles += config_.dcache_miss_penalty;
      retired->memory_stall_cycles += config_.dcache_miss_penalty;
    }
    std::uint32_t value = 0;
    switch (bytes) {
      case 1:
        value = memory_.read8(addr);
        if (sign) value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int8_t>(value)));
        break;
      case 2:
        value = memory_.read16(addr);
        if (sign) value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int16_t>(value)));
        break;
      default:
        value = memory_.read32(addr);
        break;
    }
    write_rd(value);
    pending_load_rd_ = d.rd;
  };
  auto do_store = [&](unsigned bytes) {
    const std::uint32_t addr = a + static_cast<std::uint32_t>(d.imm);
    retired->mem_addr = addr;
    retired->is_mem = true;
    retired->result = b;
    if (!config_.is_uncached(addr)) {
      // Write-through, write-around: update the cache only on hit; a store
      // miss does not allocate and does not stall (write buffer).
      dcache_.probe(addr);
    } else {
      retired->uncached_data = true;
      retired->total_cycles += config_.uncached_data_penalty;
      retired->memory_stall_cycles += config_.uncached_data_penalty;
    }
    switch (bytes) {
      case 1:
        memory_.write8(addr, static_cast<std::uint8_t>(b));
        break;
      case 2:
        memory_.write16(addr, static_cast<std::uint16_t>(b));
        break;
      default:
        memory_.write32(addr, b);
        break;
    }
  };
  auto do_branch = [&](bool taken) {
    retired->branch_taken = taken;
    if (taken) {
      target = next_pc + static_cast<std::uint32_t>(d.imm) * 4;
      retired->total_cycles += config_.taken_branch_penalty;
      retired->redirect_cycles += config_.taken_branch_penalty;
    }
  };
  auto do_jump_rel = [&](bool link) {
    // JAL's J-type encoding has no rd field; the link register is
    // architectural (r1).
    if (link) {
      set_reg(isa::kLinkRegister, next_pc);
      retired->result = next_pc;
    }
    target = next_pc + static_cast<std::uint32_t>(d.imm) * 4;
    retired->total_cycles += config_.jump_penalty;
    retired->redirect_cycles += config_.jump_penalty;
  };

  switch (d.op) {
    case Opcode::kAdd: write_rd(a + b); break;
    case Opcode::kSub: write_rd(a - b); break;
    case Opcode::kAnd: write_rd(a & b); break;
    case Opcode::kOr: write_rd(a | b); break;
    case Opcode::kXor: write_rd(a ^ b); break;
    case Opcode::kNor: write_rd(~(a | b)); break;
    case Opcode::kAndn: write_rd(a & ~b); break;
    case Opcode::kSll: write_rd(a << (b & 31)); break;
    case Opcode::kSrl: write_rd(a >> (b & 31)); break;
    case Opcode::kSra:
      write_rd(static_cast<std::uint32_t>(as_signed(a) >> (b & 31)));
      break;
    case Opcode::kSlt: write_rd(as_signed(a) < as_signed(b) ? 1 : 0); break;
    case Opcode::kSltu: write_rd(a < b ? 1 : 0); break;
    case Opcode::kMul: write_rd(a * b); break;
    case Opcode::kMulh: {
      const std::int64_t product = static_cast<std::int64_t>(as_signed(a)) *
                                   static_cast<std::int64_t>(as_signed(b));
      write_rd(static_cast<std::uint32_t>(product >> 32));
      break;
    }
    case Opcode::kMin:
      write_rd(as_signed(a) < as_signed(b) ? a : b);
      break;
    case Opcode::kMax:
      write_rd(as_signed(a) > as_signed(b) ? a : b);
      break;
    case Opcode::kMinu: write_rd(a < b ? a : b); break;
    case Opcode::kMaxu: write_rd(a > b ? a : b); break;

    case Opcode::kAddi:
      write_rd(a + static_cast<std::uint32_t>(d.imm));
      break;
    case Opcode::kAndi:
      write_rd(a & static_cast<std::uint32_t>(d.imm));
      break;
    case Opcode::kOri:
      write_rd(a | static_cast<std::uint32_t>(d.imm));
      break;
    case Opcode::kXori:
      write_rd(a ^ static_cast<std::uint32_t>(d.imm));
      break;
    case Opcode::kSlli: write_rd(a << (d.imm & 31)); break;
    case Opcode::kSrli: write_rd(a >> (d.imm & 31)); break;
    case Opcode::kSrai:
      write_rd(static_cast<std::uint32_t>(as_signed(a) >> (d.imm & 31)));
      break;
    case Opcode::kSlti:
      write_rd(as_signed(a) < d.imm ? 1 : 0);
      break;
    case Opcode::kSltiu:
      write_rd(a < static_cast<std::uint32_t>(d.imm) ? 1 : 0);
      break;
    case Opcode::kLui:
      write_rd(static_cast<std::uint32_t>(d.imm));
      break;

    case Opcode::kLw: do_load(4, false); break;
    case Opcode::kLh: do_load(2, true); break;
    case Opcode::kLhu: do_load(2, false); break;
    case Opcode::kLb: do_load(1, true); break;
    case Opcode::kLbu: do_load(1, false); break;
    case Opcode::kSw: do_store(4); break;
    case Opcode::kSh: do_store(2); break;
    case Opcode::kSb: do_store(1); break;

    case Opcode::kJ: do_jump_rel(false); break;
    case Opcode::kJal: do_jump_rel(true); break;
    case Opcode::kJr:
      target = a;
      retired->total_cycles += config_.jump_penalty;
      retired->redirect_cycles += config_.jump_penalty;
      break;
    case Opcode::kJalr:
      write_rd(next_pc);
      target = a;
      retired->total_cycles += config_.jump_penalty;
      retired->redirect_cycles += config_.jump_penalty;
      break;

    case Opcode::kBeq: do_branch(a == b); break;
    case Opcode::kBne: do_branch(a != b); break;
    case Opcode::kBlt: do_branch(as_signed(a) < as_signed(b)); break;
    case Opcode::kBge: do_branch(as_signed(a) >= as_signed(b)); break;
    case Opcode::kBltu: do_branch(a < b); break;
    case Opcode::kBgeu: do_branch(a >= b); break;
    case Opcode::kBeqz: do_branch(a == 0); break;
    case Opcode::kBnez: do_branch(a != 0); break;

    case Opcode::kNop: break;
    case Opcode::kHalt: break;

    case Opcode::kCustom: {
      const tie::CustomInstruction& ci = tie_.instruction(d.func);
      retired->custom = &ci;
      retired->base_cycles = ci.latency;
      retired->total_cycles += ci.latency - 1;
      const std::uint32_t rd_value = tie_.execute(d.func, a, b, &tie_state_);
      if (ci.writes_rd) write_rd(rd_value);
      break;
    }

    case Opcode::kOpcodeCount:
      throw Error("illegal instruction at pc=0x", std::hex, pc_);
  }

  pc_ = target;
}

}  // namespace exten::sim
