#pragma once

// Plain execution statistics (instruction mix, CPI, cache behaviour).
//
// This is the general-purpose performance profile of a run; the
// macro-model-specific variable extraction lives in model/profiler.h and
// consumes the same retirement stream.

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "sim/events.h"

namespace exten::sim {

/// Aggregate counters for one program run.
struct ExecutionStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;

  /// Retired-instruction counts per static class (index = isa::InstrClass).
  std::array<std::uint64_t, isa::kInstrClassCount> class_counts{};
  /// Base-occupancy cycles per static class.
  std::array<std::uint64_t, isa::kInstrClassCount> class_cycles{};

  std::uint64_t branches_taken = 0;
  std::uint64_t branches_untaken = 0;

  std::uint64_t icache_misses = 0;
  std::uint64_t dcache_misses = 0;
  std::uint64_t uncached_fetches = 0;
  std::uint64_t interlock_events = 0;
  std::uint64_t interlock_cycles = 0;

  /// Executions per custom instruction name.
  std::map<std::string, std::uint64_t> custom_counts;

  double cpi() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(cycles) / static_cast<double>(instructions);
  }

  /// Seconds at the given clock (MHz).
  double seconds_at(double clock_mhz) const {
    return static_cast<double>(cycles) / (clock_mhz * 1e6);
  }
};

/// RetireObserver that accumulates ExecutionStats. `final` so the
/// statically-dispatched sink path (Cpu::run_with_sink) can inline
/// on_retire.
class StatsCollector final : public RetireObserver {
 public:
  void on_run_begin() override { stats_ = ExecutionStats{}; }

  void on_retire(const RetiredInstruction& r) override {
    ++stats_.instructions;
    const auto cls = static_cast<std::size_t>(r.cls);
    ++stats_.class_counts[cls];
    stats_.class_cycles[cls] += r.base_cycles;
    if (r.cls == isa::InstrClass::Branch) {
      if (r.branch_taken) {
        ++stats_.branches_taken;
      } else {
        ++stats_.branches_untaken;
      }
    }
    if (r.icache_miss) ++stats_.icache_misses;
    if (r.dcache_miss) ++stats_.dcache_misses;
    if (r.uncached_fetch) ++stats_.uncached_fetches;
    if (r.interlock_cycles > 0) {
      ++stats_.interlock_events;
      stats_.interlock_cycles += r.interlock_cycles;
    }
    if (r.custom != nullptr) ++stats_.custom_counts[r.custom->name];
  }

  void on_run_end(std::uint64_t instructions, std::uint64_t cycles) override {
    stats_.cycles = cycles;
    (void)instructions;
  }

  const ExecutionStats& stats() const { return stats_; }

 private:
  ExecutionStats stats_;
};

}  // namespace exten::sim
