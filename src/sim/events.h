#pragma once

// The retirement event stream.
//
// The instruction-set simulator publishes one RetiredInstruction record per
// executed instruction through the RetireObserver interface. Both consumers
// of dynamic execution — the macro-model's statistics/resource-usage
// collectors (fast path) and the RTL-level power estimator (slow,
// ground-truth path) — observe the *same* stream, mirroring the paper's
// flow where ISS statistics and RTL power simulation are driven by the same
// program run (Fig. 2).

#include <cstdint>

#include "isa/encoding.h"

namespace exten::tie {
struct CustomInstruction;
}  // namespace exten::tie

namespace exten::sim {

/// Everything known about one retired instruction.
struct RetiredInstruction {
  std::uint32_t pc = 0;
  isa::DecodedInstr instr;
  isa::InstrClass cls = isa::InstrClass::Misc;

  /// Dynamic branch outcome (meaningful only for cls == Branch).
  bool branch_taken = false;

  /// Cycles the instruction occupies without stalls (1, or the custom
  /// instruction's latency).
  unsigned base_cycles = 1;
  /// Total cycles consumed including every stall and penalty.
  unsigned total_cycles = 1;

  // Dynamic non-idealities attributable to this instruction.
  bool icache_miss = false;
  bool dcache_miss = false;
  bool uncached_fetch = false;
  bool uncached_data = false;
  unsigned interlock_cycles = 0;
  /// Pipeline bubbles from a fetch redirect (taken branch / jump).
  unsigned redirect_cycles = 0;
  /// Stall cycles waiting on memory (cache refills, uncached transactions).
  unsigned memory_stall_cycles = 0;

  /// Source operand and result values (for switching-activity estimation).
  std::uint32_t rs1_value = 0;
  std::uint32_t rs2_value = 0;
  /// rd value for register writers; the stored value for stores.
  std::uint32_t result = 0;

  /// Effective address for loads/stores.
  std::uint32_t mem_addr = 0;
  bool is_mem = false;

  /// Non-null for custom instructions: the executed extension.
  const tie::CustomInstruction* custom = nullptr;
};

/// Observer of the retirement stream.
class RetireObserver {
 public:
  virtual ~RetireObserver() = default;

  /// Called once before the first instruction of a run.
  virtual void on_run_begin() {}

  /// Called for every retired instruction, in program order.
  virtual void on_retire(const RetiredInstruction& retired) = 0;

  /// Called once after the last instruction of a run, with final totals.
  virtual void on_run_end(std::uint64_t total_instructions,
                          std::uint64_t total_cycles) {
    (void)total_instructions;
    (void)total_cycles;
  }
};

}  // namespace exten::sim
