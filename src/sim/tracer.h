#pragma once

// Debug/analysis observers: a human-readable execution tracer and a
// per-PC hotspot profiler. Both plug into the same retirement stream the
// energy tooling uses (sim::RetireObserver).

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "isa/disassembler.h"
#include "sim/events.h"

namespace exten::sim {

/// Streams one line per retired instruction:
///
///   cycle      pc        disassembly                 annotations
///   [     42] 0x0000101c add r20, r21, r22           rd=0x7
///   [     61] 0x00001020 lw r20, 0(r30)              rd=0x2a mem=0x20000 DMISS
class TraceWriter : public RetireObserver {
 public:
  struct Options {
    /// Stop printing after this many instructions (0 = unlimited). The
    /// observer keeps counting either way.
    std::uint64_t max_lines = 0;
    /// Annotate cache misses, interlocks and uncached fetches.
    bool show_events = true;
    /// Annotate result values and memory addresses.
    bool show_values = true;
    /// Custom-instruction names for disassembly.
    isa::DisassemblerOptions disassembler;
  };

  explicit TraceWriter(std::ostream& os) : TraceWriter(os, Options()) {}
  TraceWriter(std::ostream& os, Options options);

  void on_run_begin() override;
  void on_retire(const RetiredInstruction& r) override;

  std::uint64_t lines_written() const { return lines_; }

 private:
  std::ostream& os_;
  Options options_;
  std::uint64_t cycle_ = 0;
  std::uint64_t lines_ = 0;
};

/// Accumulates executions and cycles per PC; reports hotspots.
///
/// The hot path is a flat table indexed from the first retired PC (a 1 MiB
/// window covers any realistic text segment), so on_retire is two array
/// adds — no tree walk per retired instruction. PCs outside the window
/// (wild jumps, uncached stubs far from text) fall back to an ordered map.
/// Sorting happens only in hottest().
class PcProfile : public RetireObserver {
 public:
  struct Entry {
    std::uint32_t pc = 0;
    std::uint64_t executions = 0;
    std::uint64_t cycles = 0;
  };

  /// Window length in bytes for the flat table.
  static constexpr std::uint32_t kWindowBytes = 1u << 20;

  void on_run_begin() override;
  void on_retire(const RetiredInstruction& r) override {
    const std::uint32_t off = r.pc - flat_base_;
    if (off < kWindowBytes && (r.pc & 3u) == 0 && !flat_.empty()) {
      Slot& slot = flat_[off >> 2];
      ++slot.executions;
      slot.cycles += r.total_cycles;
      return;
    }
    if (flat_.empty()) {
      // First retired instruction anchors the window at its pc.
      anchor(r.pc);
      return on_retire(r);
    }
    Slot& slot = overflow_[r.pc];
    ++slot.executions;
    slot.cycles += r.total_cycles;
  }

  /// The `n` PCs with the most cycles, descending (ties: lower pc first).
  std::vector<Entry> hottest(std::size_t n) const;

  /// Total cycles attributed to the top `n` PCs divided by all cycles
  /// (how loop-dominated the program is).
  double concentration(std::size_t n) const;

  std::size_t distinct_pcs() const;

 private:
  struct Slot {
    std::uint64_t executions = 0;
    std::uint64_t cycles = 0;
  };

  void anchor(std::uint32_t pc);
  std::vector<Entry> all_entries() const;

  std::uint32_t flat_base_ = 0;
  std::vector<Slot> flat_;
  std::map<std::uint32_t, Slot> overflow_;
};

}  // namespace exten::sim
