#include "sim/tracer.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "tie/compiler.h"

namespace exten::sim {

TraceWriter::TraceWriter(std::ostream& os, Options options)
    : os_(os), options_(std::move(options)) {}

void TraceWriter::on_run_begin() {
  cycle_ = 0;
  lines_ = 0;
}

void TraceWriter::on_retire(const RetiredInstruction& r) {
  cycle_ += r.total_cycles;
  if (options_.max_lines != 0 && lines_ >= options_.max_lines) return;
  ++lines_;

  os_ << '[' << std::setw(9) << cycle_ << "] 0x" << std::hex << std::setw(8)
      << std::setfill('0') << r.pc << std::dec << std::setfill(' ') << ' ';
  const std::string text = isa::disassemble(r.instr, options_.disassembler);
  os_ << std::left << std::setw(32) << text << std::right;

  if (options_.show_values) {
    const isa::OpcodeInfo& info = isa::opcode_info(r.instr.op);
    const bool writes =
        r.custom != nullptr ? r.custom->writes_rd : info.writes_rd;
    if (writes) {
      os_ << " rd=0x" << std::hex << r.result << std::dec;
    }
    if (r.is_mem) {
      os_ << " mem=0x" << std::hex << r.mem_addr << std::dec;
    }
  }
  if (options_.show_events) {
    if (r.icache_miss) os_ << " IMISS";
    if (r.dcache_miss) os_ << " DMISS";
    if (r.uncached_fetch) os_ << " UNCACHED";
    if (r.interlock_cycles > 0) os_ << " INTERLOCK";
    if (r.cls == isa::InstrClass::Branch) {
      os_ << (r.branch_taken ? " TAKEN" : " NOT-TAKEN");
    }
  }
  os_ << '\n';
}

void PcProfile::on_run_begin() {
  flat_base_ = 0;
  flat_.clear();
  overflow_.clear();
}

void PcProfile::anchor(std::uint32_t pc) {
  // 64 KiB of headroom below the first retired pc keeps backward jumps
  // (functions linked before the entry point) inside the flat window.
  constexpr std::uint32_t kHeadroom = 1u << 16;
  flat_base_ = (pc > kHeadroom ? pc - kHeadroom : 0) & ~3u;
  flat_.assign(kWindowBytes / 4, Slot{});
}

std::vector<PcProfile::Entry> PcProfile::all_entries() const {
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < flat_.size(); ++i) {
    const Slot& slot = flat_[i];
    if (slot.executions == 0) continue;
    entries.push_back({flat_base_ + static_cast<std::uint32_t>(i * 4),
                       slot.executions, slot.cycles});
  }
  for (const auto& [pc, slot] : overflow_) {
    entries.push_back({pc, slot.executions, slot.cycles});
  }
  return entries;
}

std::size_t PcProfile::distinct_pcs() const {
  std::size_t count = overflow_.size();
  for (const Slot& slot : flat_) {
    if (slot.executions != 0) ++count;
  }
  return count;
}

std::vector<PcProfile::Entry> PcProfile::hottest(std::size_t n) const {
  std::vector<Entry> entries = all_entries();
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.cycles != b.cycles ? a.cycles > b.cycles : a.pc < b.pc;
  });
  if (entries.size() > n) entries.resize(n);
  return entries;
}

double PcProfile::concentration(std::size_t n) const {
  std::uint64_t total = 0;
  std::uint64_t top = 0;
  for (const Entry& entry : all_entries()) total += entry.cycles;
  if (total == 0) return 0.0;
  for (const Entry& entry : hottest(n)) top += entry.cycles;
  return static_cast<double>(top) / static_cast<double>(total);
}

}  // namespace exten::sim
