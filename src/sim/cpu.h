#pragma once

// The XTC-32 instruction-set simulator with cycle-approximate accounting
// for a 5-stage in-order pipeline.
//
// Functional semantics are exact; timing is modeled at the level the
// macro-model needs (paper §III): per-class occupancy, instruction/data
// cache misses, uncached fetches, load-use interlocks, taken-branch and
// jump bubbles, and multi-cycle custom-instruction EX occupancy.
//
// Three execution engines share the timing model and produce bit-identical
// retirement streams (proven by tests/test_engine_diff.cpp):
//  - Engine::kFast (default): dispatches on a predecoded instruction window
//    (sim/predecode.h) and runs custom-instruction semantics as compiled
//    bytecode (tie/bytecode.h). PCs outside the window fall back to the
//    reference path, so behaviour is unchanged.
//  - Engine::kThreaded: computed-goto threaded dispatch over superblocks
//    fused from the predecoded window, with block-level event accounting
//    (sim/threaded.h). Fastest; same records, same faults, same cycles.
//  - Engine::kReference: the original interpreter — fetch through the page
//    map, isa::decode every dynamic instruction, walk the TIE Expr tree.

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "isa/program.h"
#include "obs/trace.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/events.h"
#include "sim/memory.h"
#include "sim/predecode.h"
#include "tie/compiler.h"
#include "tie/state.h"
#include "util/error.h"

namespace exten::sim {

/// Outcome of Cpu::run.
struct RunResult {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  bool halted = false;  ///< false when the instruction budget ran out
};

/// Execution-engine selection.
enum class Engine : std::uint8_t {
  kFast,       ///< predecoded dispatch + TIE bytecode
  kReference,  ///< per-step decode + TIE tree walk (the original interpreter)
  kThreaded,   ///< threaded-code superblock dispatch + TIE bytecode
};

/// Block-level event accounting kept by the threaded engine: the model's
/// N_* retirement events are attributed once per superblock execution
/// (class_counts summed at block granularity, plus a prefix walk for the
/// rare partially-executed block) instead of once per instruction. The
/// totals reconcile exactly with the per-instruction retirement stream —
/// tests/test_engine_diff.cpp pins this against a StatsCollector.
/// Accumulates across runs, like Cpu::cycles().
struct ThreadedCounters {
  std::uint64_t instructions = 0;  ///< instructions retired under kThreaded
  std::uint64_t superblocks = 0;   ///< superblock executions (incl. partial)
  std::uint64_t singles = 0;       ///< single-step fallbacks
  std::uint64_t fused = 0;         ///< fused-pair handler executions
  /// Retired instructions per static class (index = isa::InstrClass).
  std::array<std::uint64_t, isa::kInstrClassCount> class_instrs{};
};

/// Thread safety: a Cpu instance is confined to one thread (no internal
/// locking), but instances share no mutable state — each owns its Memory,
/// caches, register file and TieState. Many Cpus may run concurrently on
/// different threads against the same const TieConfiguration and the same
/// ProgramImage (load_program copies the image into private memory); this
/// is what the service-layer thread pool relies on.
class Cpu {
 public:
  static constexpr std::uint64_t kDefaultBudget = 200'000'000;

  /// Builds a processor instance: base config + instruction-set extension.
  /// The TieConfiguration must outlive the Cpu.
  Cpu(const ProcessorConfig& config, const tie::TieConfiguration& tie,
      Engine engine = Engine::kFast);

  /// Loads a program image (copies segments to memory, predecodes the text
  /// segment, sets the PC, and initializes the stack pointer to
  /// isa::kStackTop).
  void load_program(const isa::ProgramImage& image);

  /// Registers an observer of the retirement stream (not owned).
  void add_observer(RetireObserver* observer);

  Engine engine() const { return engine_; }
  void set_engine(Engine engine) { engine_ = engine; }

  /// Marks the whole predecoded window stale (and drops every fused
  /// superblock) so every word is re-decoded from memory on next fetch.
  /// Required only after mutating text bytes directly through memory() —
  /// stores executed by the program invalidate affected words (and the
  /// superblocks covering them) automatically.
  void invalidate_predecode() { predecode_.mark_all_stale(); }

  const PredecodeTable& predecode() const { return predecode_; }

  /// Block-level accounting from Engine::kThreaded runs (zeros otherwise).
  const ThreadedCounters& threaded_counters() const {
    return threaded_counters_;
  }

  /// Runs until HALT or until `max_instructions` retire, publishing every
  /// retired instruction to the registered observers (virtual dispatch).
  /// Throws exten::Error on simulation faults (illegal instruction,
  /// alignment fault, fetch from unmapped non-zero region is permitted and
  /// yields NOPs only if genuinely zero-initialized — in practice programs
  /// fault with "illegal instruction" on wild jumps).
  RunResult run(std::uint64_t max_instructions = kDefaultBudget);

  /// Runs with a statically-dispatched retirement sink: `sink` needs
  /// on_run_begin() / on_retire(const RetiredInstruction&) /
  /// on_run_end(instructions, cycles), called without virtual dispatch.
  /// This is the hot path for the macro-model profiler (model/estimate.cpp
  /// builds a profiler+stats sink); semantics match run() exactly.
  template <typename Sink>
  RunResult run_with_sink(Sink& sink,
                          std::uint64_t max_instructions = kDefaultBudget) {
    if (engine_ == Engine::kThreaded) {
      return run_threaded(sink, max_instructions);
    }
    sink.on_run_begin();
    RunResult result;
    const bool fast = engine_ == Engine::kFast;
    // Inert when tracing is disabled (one relaxed load). The aggregated
    // TIE-execution child span is emitted at run end from the per-custom-
    // instruction accounting kept by execute().
    obs::ScopedSpan run_span(obs::Category::kEngine,
                             fast ? "run_fast" : "run_reference");
    const std::uint64_t run_start_ns =
        run_span.armed() ? obs::Tracer::now_ns() : 0;
    const std::uint64_t tie_ns_before = tie_exec_ns_;
    const std::uint64_t tie_count_before = tie_exec_count_;
    while (result.instructions < max_instructions) {
      bool keep_going;
      const PredecodedInstr* p = fast ? predecode_.lookup(pc_) : nullptr;
      if (p != nullptr && p->status == PredecodedInstr::kReady) [[likely]] {
        // Hot path. The RetiredInstruction is local to this branch and
        // every function it reaches is inlined, so it provably never
        // escapes: against a sink that ignores a field, the compiler
        // drops that field's stores (and its share of the zero-init).
        RetiredInstruction retired;
        keep_going = dispatch_predecoded(p, &retired);
        ++result.instructions;
        cycles_ += retired.total_cycles;
        sink.on_retire(retired);
      } else {
        // Reference engine, out-of-window pc, or a stale/illegal entry.
        RetiredInstruction retired;
        keep_going = !fast         ? step_reference(&retired)
                     : p == nullptr ? step_reference(&retired)
                                    : step_fast_cold(p, &retired);
        ++result.instructions;
        cycles_ += retired.total_cycles;
        sink.on_retire(retired);
      }
      if (!keep_going) {
        result.halted = true;
        break;
      }
    }
    result.cycles = cycles_;
    sink.on_run_end(result.instructions, result.cycles);
    if (run_span.armed()) {
      run_span.add_counter("instructions", result.instructions);
      run_span.add_counter("cycles", result.cycles);
      if (tie_exec_count_ > tie_count_before) {
        // One aggregate span for all custom-instruction executions in this
        // run (timing each individually would distort what it measures).
        obs::emit_span(obs::Category::kTie, "tie_execute", 0, run_start_ns,
                       tie_exec_ns_ - tie_ns_before, "custom_ops",
                       tie_exec_count_ - tie_count_before);
      }
    }
    EXTEN_CHECK(result.halted, "instruction budget of ", max_instructions,
                " exhausted without HALT (runaway program at pc=0x", std::hex,
                pc_, ")");
    return result;
  }

  /// Architectural register access (r0 reads as zero).
  std::uint32_t reg(unsigned index) const;
  void set_reg(unsigned index, std::uint32_t value);

  std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t pc) { pc_ = pc; }

  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }

  tie::TieState& tie_state() { return tie_state_; }
  Cache& icache() { return icache_; }
  Cache& dcache() { return dcache_; }

  std::uint64_t cycles() const { return cycles_; }

  /// Tracing-only TIE attribution: wall nanoseconds spent inside custom-
  /// instruction semantic execution and how many executed, accumulated
  /// across runs while obs::Tracer::enabled(). Both stay 0 otherwise.
  std::uint64_t tie_exec_ns() const { return tie_exec_ns_; }
  std::uint64_t tie_exec_count() const { return tie_exec_count_; }

  const ProcessorConfig& config() const { return config_; }
  const tie::TieConfiguration& tie_config() const { return tie_; }

 private:
  /// The threaded-code superblock loop (Engine::kThreaded); defined in
  /// sim/threaded.h, included at the bottom of this header. Semantics —
  /// retirement records, cycles, faults, budget handling — match
  /// run_with_sink exactly; only the dispatch strategy and the granularity
  /// of the accounting differ.
  template <typename Sink>
  RunResult run_threaded(Sink& sink, std::uint64_t max_instructions);

  /// One reference-path step (per-step decode); returns false on HALT.
  bool step_reference(RetiredInstruction* retired);

  /// Executes a kReady predecoded entry: fetch timing, interlock check,
  /// execute. The instruction word and the resolved custom-instruction
  /// pointer come from the record — no page-map access, no decode.
  bool dispatch_predecoded(const PredecodedInstr* p,
                           RetiredInstruction* retired) {
    const std::uint32_t fetch_pc = pc_;
    retired->pc = fetch_pc;
    retired->base_cycles = 1;
    retired->total_cycles = 1;

    if (config_.is_uncached(fetch_pc)) [[unlikely]] {
      retired->uncached_fetch = true;
      retired->total_cycles += config_.uncached_fetch_penalty;
      retired->memory_stall_cycles += config_.uncached_fetch_penalty;
    } else if (icache_.access(fetch_pc) == CacheOutcome::kMiss) [[unlikely]] {
      retired->icache_miss = true;
      retired->total_cycles += config_.icache_miss_penalty;
      retired->memory_stall_cycles += config_.icache_miss_penalty;
    }

    const isa::DecodedInstr& d = p->instr;
    retired->instr = d;
    retired->cls = p->cls;

    // pending_load_rd_ is never 0 (r0 loads record the sentinel) and the
    // src fields are 0 for non-interlocking operands, so two compares
    // decide the load-use interlock.
    if (pending_load_rd_ == p->rs1_src || pending_load_rd_ == p->rs2_src)
        [[unlikely]] {
      retired->interlock_cycles = config_.load_use_interlock;
      retired->total_cycles += config_.load_use_interlock;
    }
    pending_load_rd_ = isa::kNumRegisters;

    execute(d, p->custom, retired);
    return d.op != isa::Opcode::kHalt;
  }

  /// Cold half of step_fast: refreshes stale entries (self-modifying code)
  /// and routes illegal words to the reference path.
  bool step_fast_cold(const PredecodedInstr* p, RetiredInstruction* retired);

  std::uint32_t fetch(RetiredInstruction* retired);
  /// Executes a decoded instruction. `custom` is the resolved extension for
  /// CUSTOM opcodes when the caller already knows it (the predecoded path);
  /// null makes the slow lookup. Force-inlined: the body exceeds the
  /// compiler's default inlining budget, but folding it into the
  /// run_with_sink instantiation is what lets stores to RetiredInstruction
  /// fields the sink never reads be eliminated.
#if defined(__GNUC__) || defined(__clang__)
  [[gnu::always_inline]]
#endif
  inline void execute(const isa::DecodedInstr& d,
                      const tie::CustomInstruction* custom,
                      RetiredInstruction* retired);

  ProcessorConfig config_;
  const tie::TieConfiguration& tie_;
  Memory memory_;
  Cache icache_;
  Cache dcache_;
  tie::TieState tie_state_;
  PredecodeTable predecode_;
  Engine engine_ = Engine::kFast;

  std::uint32_t regs_[isa::kNumRegisters] = {};
  std::uint32_t pc_ = isa::kTextBase;
  std::uint64_t cycles_ = 0;
  ThreadedCounters threaded_counters_;
  std::uint64_t tie_exec_ns_ = 0;
  std::uint64_t tie_exec_count_ = 0;

  // Load-use interlock tracking: destination of the previous instruction
  // if it was a load, else an impossible register index.
  unsigned pending_load_rd_ = isa::kNumRegisters;

  // Last pages touched by loads and by stores (see Memory::PageRef); kept
  // separate so a loop streaming from one page while writing another does
  // not thrash a single memo. Both engines share this path, so the saving
  // is engine-neutral.
  Memory::PageRef load_page_;
  Memory::PageRef store_page_;

  std::vector<RetireObserver*> observers_;
};


namespace internal {
inline std::int32_t as_signed(std::uint32_t v) {
  return static_cast<std::int32_t>(v);
}
}  // namespace internal

// Forces a multi-call-site lambda inline. Without this the compiler emits
// do_load/do_store as shared out-of-line functions (they have 5 and 3 call
// sites), which costs a call per memory op and — because they capture
// `retired` by reference — makes the retirement record escape, defeating
// the sink-specific dead-store elimination run_with_sink is shaped for.
// Inlining also folds the constant size/sign arguments at each call site.
#if defined(__GNUC__) || defined(__clang__)
#define EXTEN_LAMBDA_INLINE __attribute__((always_inline))
#else
#define EXTEN_LAMBDA_INLINE
#endif

/// Defined inline (with step_fast/dispatch_predecoded) so the fast engine's
/// whole step folds into the run_with_sink instantiation; the compiler then
/// specializes it against the concrete sink — e.g. dead-store-eliminating
/// event fields a NullSink never reads. The reference path calls the same
/// function out of line from cpu.cpp, preserving the original structure.
inline void Cpu::execute(const isa::DecodedInstr& d,
                  const tie::CustomInstruction* custom,
                  RetiredInstruction* retired) {
  using isa::Opcode;
  using internal::as_signed;
  // Register fields are 6-bit at decode (always < kNumRegisters), so the
  // bounds-checked reg()/set_reg() accessors are bypassed on this hot path.
  // r0 reads as zero because writes to it are suppressed below.
  const std::uint32_t a = regs_[d.rs1];
  const std::uint32_t b = regs_[d.rs2];
  retired->rs1_value = a;
  retired->rs2_value = b;
  const std::uint32_t next_pc = pc_ + 4;
  std::uint32_t target = next_pc;

  auto write_rd = [&](std::uint32_t value) {
    if (d.rd != isa::kZeroRegister) regs_[d.rd] = value;
    retired->result = value;
  };
  auto do_load = [&](unsigned bytes, bool sign) EXTEN_LAMBDA_INLINE {
    const std::uint32_t addr = a + static_cast<std::uint32_t>(d.imm);
    retired->mem_addr = addr;
    retired->is_mem = true;
    if (config_.is_uncached(addr)) {
      retired->uncached_data = true;
      retired->total_cycles += config_.uncached_data_penalty;
      retired->memory_stall_cycles += config_.uncached_data_penalty;
    } else if (dcache_.access(addr) == CacheOutcome::kMiss) {
      retired->dcache_miss = true;
      retired->total_cycles += config_.dcache_miss_penalty;
      retired->memory_stall_cycles += config_.dcache_miss_penalty;
    }
    std::uint32_t value = 0;
    switch (bytes) {
      case 1:
        value = memory_.read8_via(load_page_, addr);
        if (sign) value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int8_t>(value)));
        break;
      case 2:
        value = memory_.read16_via(load_page_, addr);
        if (sign) value = static_cast<std::uint32_t>(
            static_cast<std::int32_t>(static_cast<std::int16_t>(value)));
        break;
      default:
        value = memory_.read32_via(load_page_, addr);
        break;
    }
    write_rd(value);
    // A load into r0 can never interlock (r0 reads as zero regardless),
    // so record the sentinel — this keeps pending_load_rd_ nonzero, which
    // the predecoded interlock check relies on.
    pending_load_rd_ =
        d.rd != isa::kZeroRegister ? d.rd : isa::kNumRegisters;
  };
  auto do_store = [&](unsigned bytes) EXTEN_LAMBDA_INLINE {
    const std::uint32_t addr = a + static_cast<std::uint32_t>(d.imm);
    retired->mem_addr = addr;
    retired->is_mem = true;
    retired->result = b;
    if (!config_.is_uncached(addr)) {
      // Write-through, write-around: update the cache only on hit; a store
      // miss does not allocate and does not stall (write buffer).
      dcache_.probe(addr);
    } else {
      retired->uncached_data = true;
      retired->total_cycles += config_.uncached_data_penalty;
      retired->memory_stall_cycles += config_.uncached_data_penalty;
    }
    switch (bytes) {
      case 1:
        memory_.write8_via(store_page_, addr, static_cast<std::uint8_t>(b));
        break;
      case 2:
        memory_.write16_via(store_page_, addr, static_cast<std::uint16_t>(b));
        break;
      default:
        memory_.write32_via(store_page_, addr, b);
        break;
    }
    // Self-modifying code: a store into the predecoded text window marks
    // the containing word stale (re-decoded on next fetch).
    predecode_.note_write(addr);
  };
  auto do_branch = [&](bool taken) {
    retired->branch_taken = taken;
    if (taken) {
      target = next_pc + static_cast<std::uint32_t>(d.imm) * 4;
      retired->total_cycles += config_.taken_branch_penalty;
      retired->redirect_cycles += config_.taken_branch_penalty;
    }
  };
  auto do_jump_rel = [&](bool link) {
    // JAL's J-type encoding has no rd field; the link register is
    // architectural (r1).
    if (link) {
      set_reg(isa::kLinkRegister, next_pc);
      retired->result = next_pc;
    }
    target = next_pc + static_cast<std::uint32_t>(d.imm) * 4;
    retired->total_cycles += config_.jump_penalty;
    retired->redirect_cycles += config_.jump_penalty;
  };

  switch (d.op) {
    case Opcode::kAdd: write_rd(a + b); break;
    case Opcode::kSub: write_rd(a - b); break;
    case Opcode::kAnd: write_rd(a & b); break;
    case Opcode::kOr: write_rd(a | b); break;
    case Opcode::kXor: write_rd(a ^ b); break;
    case Opcode::kNor: write_rd(~(a | b)); break;
    case Opcode::kAndn: write_rd(a & ~b); break;
    case Opcode::kSll: write_rd(a << (b & 31)); break;
    case Opcode::kSrl: write_rd(a >> (b & 31)); break;
    case Opcode::kSra:
      write_rd(static_cast<std::uint32_t>(as_signed(a) >> (b & 31)));
      break;
    case Opcode::kSlt: write_rd(as_signed(a) < as_signed(b) ? 1 : 0); break;
    case Opcode::kSltu: write_rd(a < b ? 1 : 0); break;
    case Opcode::kMul: write_rd(a * b); break;
    case Opcode::kMulh: {
      const std::int64_t product = static_cast<std::int64_t>(as_signed(a)) *
                                   static_cast<std::int64_t>(as_signed(b));
      write_rd(static_cast<std::uint32_t>(product >> 32));
      break;
    }
    case Opcode::kMin:
      write_rd(as_signed(a) < as_signed(b) ? a : b);
      break;
    case Opcode::kMax:
      write_rd(as_signed(a) > as_signed(b) ? a : b);
      break;
    case Opcode::kMinu: write_rd(a < b ? a : b); break;
    case Opcode::kMaxu: write_rd(a > b ? a : b); break;

    case Opcode::kAddi:
      write_rd(a + static_cast<std::uint32_t>(d.imm));
      break;
    case Opcode::kAndi:
      write_rd(a & static_cast<std::uint32_t>(d.imm));
      break;
    case Opcode::kOri:
      write_rd(a | static_cast<std::uint32_t>(d.imm));
      break;
    case Opcode::kXori:
      write_rd(a ^ static_cast<std::uint32_t>(d.imm));
      break;
    case Opcode::kSlli: write_rd(a << (d.imm & 31)); break;
    case Opcode::kSrli: write_rd(a >> (d.imm & 31)); break;
    case Opcode::kSrai:
      write_rd(static_cast<std::uint32_t>(as_signed(a) >> (d.imm & 31)));
      break;
    case Opcode::kSlti:
      write_rd(as_signed(a) < d.imm ? 1 : 0);
      break;
    case Opcode::kSltiu:
      write_rd(a < static_cast<std::uint32_t>(d.imm) ? 1 : 0);
      break;
    case Opcode::kLui:
      write_rd(static_cast<std::uint32_t>(d.imm));
      break;

    case Opcode::kLw: do_load(4, false); break;
    case Opcode::kLh: do_load(2, true); break;
    case Opcode::kLhu: do_load(2, false); break;
    case Opcode::kLb: do_load(1, true); break;
    case Opcode::kLbu: do_load(1, false); break;
    case Opcode::kSw: do_store(4); break;
    case Opcode::kSh: do_store(2); break;
    case Opcode::kSb: do_store(1); break;

    case Opcode::kJ: do_jump_rel(false); break;
    case Opcode::kJal: do_jump_rel(true); break;
    case Opcode::kJr:
      target = a;
      retired->total_cycles += config_.jump_penalty;
      retired->redirect_cycles += config_.jump_penalty;
      break;
    case Opcode::kJalr:
      write_rd(next_pc);
      target = a;
      retired->total_cycles += config_.jump_penalty;
      retired->redirect_cycles += config_.jump_penalty;
      break;

    case Opcode::kBeq: do_branch(a == b); break;
    case Opcode::kBne: do_branch(a != b); break;
    case Opcode::kBlt: do_branch(as_signed(a) < as_signed(b)); break;
    case Opcode::kBge: do_branch(as_signed(a) >= as_signed(b)); break;
    case Opcode::kBltu: do_branch(a < b); break;
    case Opcode::kBgeu: do_branch(a >= b); break;
    case Opcode::kBeqz: do_branch(a == 0); break;
    case Opcode::kBnez: do_branch(a != 0); break;

    case Opcode::kNop: break;
    case Opcode::kHalt: break;

    case Opcode::kCustom: {
      const tie::CustomInstruction& ci =
          custom != nullptr ? *custom : tie_.instruction(d.func);
      retired->custom = &ci;
      retired->base_cycles = ci.latency;
      retired->total_cycles += ci.latency - 1;
      std::uint32_t rd_value;
      if (obs::Tracer::enabled()) [[unlikely]] {
        // Per-execution accounting for the aggregated tie_execute span;
        // individual spans here would cost more than what they measure.
        const auto tie_start = std::chrono::steady_clock::now();
        rd_value = engine_ != Engine::kReference
                       ? tie_.execute(ci, a, b, &tie_state_)
                       : tie_.execute_reference(ci, a, b, &tie_state_);
        tie_exec_ns_ += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - tie_start)
                .count());
        ++tie_exec_count_;
      } else {
        rd_value = engine_ != Engine::kReference
                       ? tie_.execute(ci, a, b, &tie_state_)
                       : tie_.execute_reference(ci, a, b, &tie_state_);
      }
      if (ci.writes_rd) write_rd(rd_value);
      break;
    }

    case Opcode::kOpcodeCount:
      throw Error("illegal instruction at pc=0x", std::hex, pc_);
  }

  pc_ = target;
}

}  // namespace exten::sim

// Defines the Cpu::run_threaded template (Engine::kThreaded). Included
// last so the interpreter sees the complete Cpu definition, including the
// force-inlined execute() it reuses for fused tails.
#include "sim/threaded.h"  // IWYU pragma: keep

#undef EXTEN_LAMBDA_INLINE
