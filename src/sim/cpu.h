#pragma once

// The XTC-32 instruction-set simulator with cycle-approximate accounting
// for a 5-stage in-order pipeline.
//
// Functional semantics are exact; timing is modeled at the level the
// macro-model needs (paper §III): per-class occupancy, instruction/data
// cache misses, uncached fetches, load-use interlocks, taken-branch and
// jump bubbles, and multi-cycle custom-instruction EX occupancy.

#include <cstdint>
#include <vector>

#include "isa/program.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/events.h"
#include "sim/memory.h"
#include "tie/compiler.h"
#include "tie/state.h"

namespace exten::sim {

/// Outcome of Cpu::run.
struct RunResult {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  bool halted = false;  ///< false when the instruction budget ran out
};

/// Thread safety: a Cpu instance is confined to one thread (no internal
/// locking), but instances share no mutable state — each owns its Memory,
/// caches, register file and TieState. Many Cpus may run concurrently on
/// different threads against the same const TieConfiguration and the same
/// ProgramImage (load_program copies the image into private memory); this
/// is what the service-layer thread pool relies on.
class Cpu {
 public:
  /// Builds a processor instance: base config + instruction-set extension.
  /// The TieConfiguration must outlive the Cpu.
  Cpu(const ProcessorConfig& config, const tie::TieConfiguration& tie);

  /// Loads a program image (copies segments to memory, sets the PC, and
  /// initializes the stack pointer to isa::kStackTop).
  void load_program(const isa::ProgramImage& image);

  /// Registers an observer of the retirement stream (not owned).
  void add_observer(RetireObserver* observer);

  /// Runs until HALT or until `max_instructions` retire.
  /// Throws exten::Error on simulation faults (illegal instruction,
  /// alignment fault, fetch from unmapped non-zero region is permitted and
  /// yields NOPs only if genuinely zero-initialized — in practice programs
  /// fault with "illegal instruction" on wild jumps).
  RunResult run(std::uint64_t max_instructions = 200'000'000);

  /// Architectural register access (r0 reads as zero).
  std::uint32_t reg(unsigned index) const;
  void set_reg(unsigned index, std::uint32_t value);

  std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t pc) { pc_ = pc; }

  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }

  tie::TieState& tie_state() { return tie_state_; }
  Cache& icache() { return icache_; }
  Cache& dcache() { return dcache_; }

  std::uint64_t cycles() const { return cycles_; }

  const ProcessorConfig& config() const { return config_; }
  const tie::TieConfiguration& tie_config() const { return tie_; }

 private:
  /// Executes one instruction; returns false on HALT.
  bool step(RetiredInstruction* retired);

  std::uint32_t fetch(RetiredInstruction* retired);
  void execute(const isa::DecodedInstr& d, RetiredInstruction* retired);

  ProcessorConfig config_;
  const tie::TieConfiguration& tie_;
  Memory memory_;
  Cache icache_;
  Cache dcache_;
  tie::TieState tie_state_;

  std::uint32_t regs_[isa::kNumRegisters] = {};
  std::uint32_t pc_ = isa::kTextBase;
  std::uint64_t cycles_ = 0;

  // Load-use interlock tracking: destination of the previous instruction
  // if it was a load, else an impossible register index.
  unsigned pending_load_rd_ = isa::kNumRegisters;

  std::vector<RetireObserver*> observers_;
};

}  // namespace exten::sim
