// xtc-run: execute a program on the XTC-32 simulator.
//
//   xtc-run program.s|program.img [--tie spec.tie] [--trace [N]]
//           [--profile [N]] [--max-instructions N] [--dump-regs]
//           [--engine fast|reference|threaded] [--trace-json FILE]
//
// Prints the execution statistics (instructions, cycles, CPI, cache
// behaviour, custom-instruction counts); --trace streams a disassembled
// trace, --profile prints the hottest PCs. --trace-json (the name
// --trace already means the instruction trace here) collects timing
// spans — TIE compile, predecode, the run itself, aggregated
// custom-instruction execution — and writes Chrome trace-event JSON
// (docs/observability.md).

#include "obs/export.h"
#include "obs/trace.h"
#include "sim/cpu.h"
#include "sim/stats.h"
#include "sim/tracer.h"
#include "tools/tool_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace exten;
  return tools::tool_main("xtc-run", [&] {
    const tools::Args args(argc, argv);
    if (tools::handle_version(args, "xtc-run")) return tools::kExitOk;
    if (args.positional().size() != 1) {
      std::cerr << "usage: xtc-run program.s|program.img [--tie spec.tie] "
                   "[--trace N] [--profile N] [--max-instructions N] "
                   "[--dump-regs] [--engine fast|reference|threaded]\n";
      return tools::kExitUsage;
    }
    const std::optional<std::string> trace_json = args.value("trace-json");
    if (trace_json.has_value()) {
      // Enabled before load_program so the TIE compile span is captured.
      obs::Tracer::instance().set_enabled(true);
    }

    tools::LoadedProgram loaded = [&] {
      obs::ScopedSpan span(obs::Category::kTool, "load_program");
      return tools::load_program(args.positional()[0], args);
    }();

    sim::Engine engine = sim::Engine::kFast;
    if (auto v = args.value("engine")) {
      if (*v == "fast") {
        engine = sim::Engine::kFast;
      } else if (*v == "reference") {
        engine = sim::Engine::kReference;
      } else if (*v == "threaded") {
        engine = sim::Engine::kThreaded;
      } else {
        throw Error("bad --engine '", *v,
                    "' (expected fast, reference, or threaded)");
      }
    }

    sim::Cpu cpu({}, *loaded.tie, engine);
    cpu.load_program(loaded.image);

    sim::StatsCollector stats;
    cpu.add_observer(&stats);

    std::unique_ptr<sim::TraceWriter> tracer;
    if (args.has("trace")) {
      sim::TraceWriter::Options topt;
      std::int64_t lines = 0;
      if (auto v = args.value("trace"); v && parse_int(*v, &lines)) {
        topt.max_lines = static_cast<std::uint64_t>(lines);
      }
      topt.disassembler.custom_mnemonics =
          loaded.tie->disassembler_mnemonics();
      tracer = std::make_unique<sim::TraceWriter>(std::cout, topt);
      cpu.add_observer(tracer.get());
    }
    sim::PcProfile profile;
    if (args.has("profile")) cpu.add_observer(&profile);

    std::uint64_t budget = 200'000'000;
    if (auto v = args.value("max-instructions")) {
      std::int64_t n = 0;
      EXTEN_CHECK(parse_int(*v, &n) && n > 0, "bad --max-instructions '", *v,
                  "'");
      budget = static_cast<std::uint64_t>(n);
    }
    const sim::RunResult result = cpu.run(budget);
    if (trace_json.has_value()) {
      obs::Tracer::instance().set_enabled(false);
      const std::vector<obs::Span> spans = obs::Tracer::instance().snapshot();
      tools::write_file(*trace_json, obs::chrome_trace_json(spans));
      std::cout << "wrote " << spans.size() << " spans to " << *trace_json
                << "\n"
                << obs::stage_summary_table(obs::aggregate_stages(spans));
    }

    const sim::ExecutionStats& s = stats.stats();
    AsciiTable table({"Statistic", "Value"});
    table.add_row({"instructions", with_commas(s.instructions)});
    table.add_row({"cycles", with_commas(s.cycles)});
    table.add_row({"CPI", format_fixed(s.cpi(), 3)});
    table.add_row({"time @ 187 MHz (ms)",
                   format_fixed(s.seconds_at(187.0) * 1e3, 3)});
    table.add_row({"icache misses", with_commas(s.icache_misses)});
    table.add_row({"dcache misses", with_commas(s.dcache_misses)});
    table.add_row({"uncached fetches", with_commas(s.uncached_fetches)});
    table.add_row({"interlocks", with_commas(s.interlock_events)});
    table.add_row({"branches taken/untaken",
                   with_commas(s.branches_taken) + " / " +
                       with_commas(s.branches_untaken)});
    for (const auto& [name, count] : s.custom_counts) {
      table.add_row({"custom " + name, with_commas(count)});
    }
    table.print(std::cout);
    (void)result;

    if (args.has("profile")) {
      std::int64_t top = 10;
      if (auto v = args.value("profile")) parse_int(*v, &top);
      std::cout << "\nhottest PCs (" << profile.distinct_pcs()
                << " distinct):\n";
      for (const auto& entry :
           profile.hottest(static_cast<std::size_t>(top))) {
        std::printf("  0x%08x  %12llu cycles  %10llu executions\n", entry.pc,
                    static_cast<unsigned long long>(entry.cycles),
                    static_cast<unsigned long long>(entry.executions));
      }
      std::printf("  top-%lld concentration: %.1f %%\n",
                  static_cast<long long>(top),
                  100.0 * profile.concentration(static_cast<std::size_t>(top)));
    }

    if (args.has("dump-regs")) {
      std::cout << "\nregisters:\n";
      for (unsigned r = 0; r < isa::kNumRegisters; r += 4) {
        std::printf("  r%-2u 0x%08x  r%-2u 0x%08x  r%-2u 0x%08x  r%-2u 0x%08x\n",
                    r, cpu.reg(r), r + 1, cpu.reg(r + 1), r + 2,
                    cpu.reg(r + 2), r + 3, cpu.reg(r + 3));
      }
    }
    return tools::kExitOk;
  });
}
