// xtc-serve: the HTTP estimation server.
//
//   xtc-serve --model xtc32.macromodel [--port N] [--port-file PATH]
//             [--address A] [--shards N] [--accept auto|reuseport|handoff]
//             [--threads N] [--cache N] [--cache-stripes N]
//             [--max-inflight N] [--deadline-ms N] [--poller epoll|poll]
//             [--trace FILE] [--energy auto|rapl|synthetic|none]
//             [--energy-sysfs-root P] [--energy-interval-ms N]
//
// --shards N runs N independent event-loop shards (0 = hardware
// concurrency; default 1 = the classic single loop) in front of one shared
// estimator pool; --accept picks how connections reach them (see
// docs/server.md — auto uses SO_REUSEPORT kernel balancing when available,
// handoff is the portable round-robin fallback). --threads sizes the
// shared estimator worker pool, --cache-stripes the evaluation cache's
// lock striping (0 = auto).
//
// --energy selects the host-energy backend (default auto: RAPL when the
// powercap tree is readable, else none — never a startup failure). With a
// live backend, /metrics exports xtc_host_energy_joules_total{domain=...}
// and xtc_energy_joules_per_request, /healthz reports "energy_backend",
// and a total-joules line prints after the drain (docs/energy.md).
//
// Serves POST /v1/estimate, POST /v1/batch, POST /v1/rank plus
// GET /healthz, GET /metrics and GET /v1/trace (see docs/server.md for
// the API). --trace enables span collection for the whole process and
// writes a Chrome trace-event JSON file (plus a per-stage summary on
// stdout) after the server drains; GET /v1/trace serves the same spans
// live (see docs/observability.md).
// --port defaults to 0 (ephemeral); the bound port is printed on stdout
// ("listening on ADDRESS:PORT") and, with --port-file, written to PATH so
// scripts can find it without parsing output. SIGTERM/SIGINT trigger a
// graceful drain: in-flight requests finish, new ones are refused, and
// the process exits 0.

#include <csignal>

#include <thread>

#include "energy/meter.h"
#include "net/sharded_server.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "tools/tool_common.h"

namespace {

exten::net::ShardedServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exten;
  return tools::tool_main("xtc-serve", [&] {
    const tools::Args args(argc, argv);
    args.require_known({"model", "port", "port-file", "address", "shards",
                        "accept", "threads", "cache", "cache-stripes",
                        "max-inflight", "deadline-ms", "poller", "trace",
                        "energy", "energy-sysfs-root", "energy-interval-ms",
                        "version"});
    if (tools::handle_version(args, "xtc-serve")) return tools::kExitOk;
    if (!args.has("model") || !args.positional().empty()) {
      std::cerr << "usage: xtc-serve --model FILE [--port N] "
                   "[--port-file PATH] [--address A] [--shards N] "
                   "[--accept auto|reuseport|handoff] [--threads N] "
                   "[--cache N] [--cache-stripes N] [--max-inflight N] "
                   "[--deadline-ms N] [--poller epoll|poll] [--trace FILE]\n";
      return tools::kExitUsage;
    }

    const std::optional<std::string> trace_file = args.value("trace");
    if (trace_file.has_value()) {
      obs::Tracer::instance().set_enabled(true);
    }

    service::BatchOptions batch_options;
    if (auto threads = args.value("threads")) {
      batch_options.num_threads =
          static_cast<unsigned>(tools::parse_count("threads", *threads, 1));
    }
    if (auto cache = args.value("cache")) {
      batch_options.cache_capacity = tools::parse_count("cache", *cache);
    }
    if (auto stripes = args.value("cache-stripes")) {
      batch_options.cache_stripes = static_cast<std::size_t>(
          tools::parse_count("cache-stripes", *stripes, 0, 1024));
    }

    net::ShardedServerOptions sharded_options;
    sharded_options.shards = 1;
    if (auto shards = args.value("shards")) {
      sharded_options.shards = static_cast<unsigned>(
          tools::parse_count("shards", *shards, 0, 256));
      if (sharded_options.shards == 0) {
        sharded_options.shards =
            std::max(1u, std::thread::hardware_concurrency());
      }
    }
    if (auto accept = args.value("accept")) {
      using AcceptMode = net::ShardedServerOptions::AcceptMode;
      if (*accept == "auto") {
        sharded_options.accept_mode = AcceptMode::kAuto;
      } else if (*accept == "reuseport") {
        sharded_options.accept_mode = AcceptMode::kReusePort;
      } else if (*accept == "handoff") {
        sharded_options.accept_mode = AcceptMode::kHandoff;
      } else {
        throw Error("bad --accept '", *accept,
                    "' (auto|reuseport|handoff)");
      }
    }

    net::ServerOptions& server_options = sharded_options.server;
    if (auto address = args.value("address")) {
      server_options.bind_address = *address;
    }
    if (auto port = args.value("port")) {
      // 0 is the documented ephemeral bind (OS-assigned, reported via
      // --port-file); anything past 65535 used to truncate silently.
      server_options.port = static_cast<std::uint16_t>(
          tools::parse_count("port", *port, 0, 65'535));
    }
    if (auto inflight = args.value("max-inflight")) {
      server_options.max_inflight =
          tools::parse_count("max-inflight", *inflight, 1);
    }
    if (auto deadline = args.value("deadline-ms")) {
      server_options.default_deadline_ms = static_cast<int>(
          tools::parse_count("deadline-ms", *deadline, 1, 3'600'000));
    }
    if (auto poller = args.value("poller")) {
      if (*poller == "epoll") {
        server_options.poller_backend = net::Poller::Backend::kEpoll;
      } else if (*poller == "poll") {
        server_options.poller_backend = net::Poller::Backend::kPoll;
      } else {
        throw Error("bad --poller '", *poller, "' (epoll|poll)");
      }
    }

    // Host-energy meter: detection degrades to "none" instead of failing,
    // so a box without powercap serves exactly as before.
    int energy_interval_ms = 100;
    if (auto interval = args.value("energy-interval-ms")) {
      energy_interval_ms = static_cast<int>(std::stol(*interval));
      EXTEN_CHECK(energy_interval_ms >= 0,
                  "--energy-interval-ms must be >= 0");
    }
    energy::EnergyMeter energy_meter(
        energy::detect_backend(args.value("energy").value_or("auto"),
                               args.value("energy-sysfs-root").value_or("")),
        energy_interval_ms);
    server_options.energy_meter = &energy_meter;

    service::BatchEstimator estimator(
        model::EnergyMacroModel::deserialize(
            tools::read_file(args.value("model").value())),
        batch_options);
    net::ShardedServer server(estimator, sharded_options);

    g_server = &server;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);  // broken clients must not kill us

    if (auto port_file = args.value("port-file")) {
      tools::write_file(*port_file, std::to_string(server.port()) + "\n");
    }
    std::cout << "listening on " << server_options.bind_address << ":"
              << server.port() << " (" << server.num_shards() << " shard"
              << (server.num_shards() == 1 ? "" : "s")
              << (server.num_shards() > 1
                      ? (server.using_reuse_port() ? " via reuseport"
                                                   : " via handoff")
                      : "")
              << ", " << estimator.num_threads()
              << " workers, energy backend " << energy_meter.kind() << ")\n"
              << std::flush;

    server.run();
    g_server = nullptr;
    std::cout << "drained after " << server.requests_served()
              << " requests, exiting\n";
    if (energy_meter.live()) {
      energy_meter.sample_now();
      std::cout << "host energy (" << energy_meter.kind() << "):";
      for (const energy::DomainEnergy& d : energy_meter.snapshot()) {
        std::cout << " " << d.name << "=" << format_fixed(d.joules, 6) << "J";
      }
      std::cout << "\n";
    }
    if (trace_file.has_value()) {
      obs::Tracer::instance().set_enabled(false);
      const std::vector<obs::Span> spans = obs::Tracer::instance().snapshot();
      tools::write_file(*trace_file, obs::chrome_trace_json(spans));
      std::cout << "wrote " << spans.size() << " spans to " << *trace_file
                << " (" << obs::Tracer::instance().dropped_spans()
                << " dropped)\n"
                << obs::stage_summary_table(obs::aggregate_stages(spans));
    }
    return tools::kExitOk;
  });
}
