// xtc-power: measure host energy around a workload run and report it side
// by side with the macro-model estimate and the RTL-level oracle.
//
//   xtc-power --model xtc32.macromodel [--workload NAME] [--n N]
//             [--seed S] [--sweep K] [--backend auto|rapl|synthetic|none]
//             [--sysfs-root PATH] [--no-reference] [--json] [--list]
//
// The workload (one of the Table II / extras kernels, see --list) is
// generated with embedded input data derived from --seed, then run end to
// end: the macro-model estimate (fast path) and the RTL-level reference
// (slow path, unless --no-reference) execute inside one EnergySection, so
// the measured joules are the host energy of the whole run.
//
// --sweep K varies the workload's input-data distribution (seeds S..S+K-1,
// per Morse, "Measuring the impact of input data on energy consumption of
// software") and reports the measured-energy spread and the model-error
// spread across inputs — the input-dependence of the macro-model's
// accuracy.
//
// --sysfs-root points the RAPL backend at a fake-sysfs fixture tree
// (tests/fixtures/rapl) for hermetic CI runs with exact expected joules;
// docs/energy.md documents the fixture recipe. On a machine with no
// readable powercap tree the backend degrades to "none": the model/oracle
// columns still print, the measured column reads "-", and the exit code
// stays 0.

#include <algorithm>
#include <functional>
#include <iostream>
#include <map>

#include "energy/meter.h"
#include "model/estimate.h"
#include "tools/tool_common.h"
#include "util/json.h"
#include "util/table.h"
#include "workloads/workloads.h"

namespace {

using namespace exten;

using WorkloadMaker =
    std::function<model::TestProgram(unsigned n, std::uint64_t seed)>;

// Name -> (maker, default size). Sizes keep a full sweep under a few
// seconds per seed with the reference oracle on.
const std::map<std::string, std::pair<WorkloadMaker, unsigned>>&
workload_registry() {
  using namespace exten::workloads;
  static const std::map<std::string, std::pair<WorkloadMaker, unsigned>>
      registry = {
          {"ins_sort", {make_ins_sort, 128}},
          {"gcd", {make_gcd, 128}},
          {"alphablend", {make_alphablend, 512}},
          {"add4", {make_add4, 512}},
          {"bubsort", {make_bubsort, 96}},
          {"des", {make_des, 64}},
          {"accumulate", {make_accumulate, 512}},
          {"drawline", {make_drawline, 64}},
          {"multi_accumulate", {make_multi_accumulate, 512}},
          {"seq_mult", {make_seq_mult, 512}},
          {"fir", {make_fir, 512}},
          {"crc32", {make_crc32, 512}},
          {"sad", {make_sad, 8}},
          {"rs_gfmac",
           {[](unsigned n, std::uint64_t seed) {
              return make_reed_solomon(RsConfig::kGfMac, n, seed);
            },
            16}},
      };
  return registry;
}

struct RunResult {
  std::uint64_t seed = 0;
  energy::EnergySection::Report measured;
  double model_uj = 0.0;
  double reference_uj = 0.0;  // 0 with --no-reference
  bool has_reference = false;

  double error_percent() const {
    if (!has_reference || reference_uj <= 0.0) return 0.0;
    return (model_uj - reference_uj) / reference_uj * 100.0;
  }
};

struct Spread {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

Spread spread_of(const std::vector<double>& values) {
  Spread s;
  if (values.empty()) return s;
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  return s;
}

void json_spread(JsonWriter& w, std::string_view key, const Spread& s) {
  w.object_field(key);
  w.field("min", s.min);
  w.field("mean", s.mean);
  w.field("max", s.max);
  w.field("spread", s.max - s.min);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exten;
  return tools::tool_main("xtc-power", [&] {
    const tools::Args args(argc, argv);
    args.require_known({"model", "workload", "n", "seed", "sweep", "backend",
                        "sysfs-root", "no-reference", "json", "list",
                        "version"});
    if (tools::handle_version(args, "xtc-power")) return tools::kExitOk;
    if (args.has("list")) {
      for (const auto& [name, entry] : workload_registry()) {
        std::cout << name << " (default n=" << entry.second << ")\n";
      }
      return tools::kExitOk;
    }
    if (!args.has("model") || !args.positional().empty()) {
      std::cerr << "usage: xtc-power --model FILE [--workload NAME] [--n N] "
                   "[--seed S] [--sweep K] "
                   "[--backend auto|rapl|synthetic|none] "
                   "[--sysfs-root PATH] [--no-reference] [--json] [--list]\n";
      return tools::kExitUsage;
    }

    const std::string workload = args.value("workload").value_or("fir");
    const auto it = workload_registry().find(workload);
    EXTEN_CHECK(it != workload_registry().end(), "unknown workload '",
                workload, "' (try --list)");
    const WorkloadMaker& maker = it->second.first;
    unsigned n = it->second.second;
    if (auto v = args.value("n")) {
      n = static_cast<unsigned>(tools::parse_count("n", *v, 1, 1'000'000'000));
    }
    std::uint64_t seed = 1;
    if (auto v = args.value("seed")) seed = tools::parse_count("seed", *v);
    unsigned sweep = 1;
    if (auto v = args.value("sweep")) {
      sweep =
          static_cast<unsigned>(tools::parse_count("sweep", *v, 1, 1'000'000));
    }
    const bool want_reference = !args.has("no-reference");
    const bool json_output = args.has("json");

    const model::EnergyMacroModel macro_model =
        model::EnergyMacroModel::deserialize(
            tools::read_file(args.value("model").value()));

    // On-demand sampling only: with a fixture tree the read count (one at
    // open, two per section) fully determines the reported joules.
    energy::EnergyMeter meter(
        energy::detect_backend(args.value("backend").value_or("auto"),
                               args.value("sysfs-root").value_or("")),
        /*sample_interval_ms=*/0);

    if (!json_output) {
      std::cout << "workload " << workload << " (n=" << n << "), energy backend "
                << meter.kind();
      if (meter.live()) {
        std::cout << ", domains:";
        for (const std::string& name : meter.domain_names()) {
          std::cout << " " << name;
        }
      } else {
        std::cout << " — host energy unavailable (no readable powercap "
                     "tree); model/oracle estimates only";
      }
      std::cout << "\n";
    }

    std::vector<RunResult> runs;
    for (unsigned k = 0; k < sweep; ++k) {
      RunResult run;
      run.seed = seed + k;
      const model::TestProgram program = maker(n, run.seed);
      energy::EnergySection section(meter);
      run.model_uj = model::estimate_energy(macro_model, program).energy_uj();
      if (want_reference) {
        run.reference_uj = model::reference_energy(program).energy_uj();
        run.has_reference = true;
      }
      run.measured = section.stop();
      runs.push_back(std::move(run));
    }

    if (json_output) {
      JsonWriter w;
      w.begin_object();
      w.field("workload", std::string_view(workload));
      w.field("n", static_cast<std::uint64_t>(n));
      w.field("backend", std::string_view(meter.kind()));
      w.array_field("domains");
      for (const std::string& name : meter.domain_names()) w.element(name);
      w.end_array();
      w.array_field("runs");
      for (const RunResult& run : runs) {
        w.element_object();
        w.field("seed", run.seed);
        w.field("measured_live", run.measured.live);
        w.object_field("measured_joules");
        for (const energy::DomainEnergy& d : run.measured.joules) {
          w.field(d.name, d.joules);
        }
        w.end_object();
        w.field("measured_total_joules", run.measured.total_joules());
        w.field("wall_seconds", run.measured.wall_seconds);
        w.field("model_uj", run.model_uj);
        if (run.has_reference) {
          w.field("reference_uj", run.reference_uj);
          w.field("error_percent", run.error_percent());
        }
        w.end_object();
      }
      w.end_array();
      if (sweep > 1) {
        // The Morse scenario: how much do measured energy and model error
        // move when only the input-data distribution changes?
        std::vector<double> measured, model_ujs, errors;
        for (const RunResult& run : runs) {
          measured.push_back(run.measured.total_joules());
          model_ujs.push_back(run.model_uj);
          if (run.has_reference) errors.push_back(run.error_percent());
        }
        w.object_field("sweep");
        w.field("runs", static_cast<std::uint64_t>(runs.size()));
        json_spread(w, "measured_total_joules", spread_of(measured));
        json_spread(w, "model_uj", spread_of(model_ujs));
        if (!errors.empty()) {
          json_spread(w, "error_percent", spread_of(errors));
        }
        w.end_object();
      }
      w.end_object();
      std::cout << w.str() << "\n";
      return tools::kExitOk;
    }

    AsciiTable table({"Seed", "Measured (J)", "Wall (s)", "Model (uJ)",
                      "Reference (uJ)", "Error (%)"});
    for (const RunResult& run : runs) {
      table.add_row(
          {std::to_string(run.seed),
           run.measured.live ? format_fixed(run.measured.total_joules(), 6)
                             : std::string("-"),
           format_fixed(run.measured.wall_seconds, 3),
           format_fixed(run.model_uj, 3),
           run.has_reference ? format_fixed(run.reference_uj, 3)
                             : std::string("-"),
           run.has_reference ? format_fixed(run.error_percent(), 2)
                             : std::string("-")});
    }
    table.print(std::cout);
    if (meter.live()) {
      std::cout << "\nper-domain joules (last run):";
      for (const energy::DomainEnergy& d : runs.back().measured.joules) {
        std::cout << " " << d.name << "=" << format_fixed(d.joules, 6);
      }
      std::cout << "\n";
    }
    if (sweep > 1) {
      std::vector<double> measured, errors;
      for (const RunResult& run : runs) {
        measured.push_back(run.measured.total_joules());
        if (run.has_reference) errors.push_back(run.error_percent());
      }
      const Spread em = spread_of(measured);
      std::cout << "sweep over " << sweep << " input distributions: ";
      if (meter.live()) {
        std::cout << "measured " << format_fixed(em.min, 6) << ".."
                  << format_fixed(em.max, 6) << " J (mean "
                  << format_fixed(em.mean, 6) << ")";
      } else {
        std::cout << "measured unavailable";
      }
      if (!errors.empty()) {
        const Spread ee = spread_of(errors);
        std::cout << ", model error " << format_fixed(ee.min, 2) << ".."
                  << format_fixed(ee.max, 2) << " % (mean "
                  << format_fixed(ee.mean, 2) << ", spread "
                  << format_fixed(ee.max - ee.min, 2) << ")";
      }
      std::cout << "\n";
    }
    return tools::kExitOk;
  });
}
