// xtc-http: tiny HTTP client for driving xtc-serve from scripts (CI
// smoke tests, shell experiments) without needing curl in the image.
//
//   xtc-http get   HOST:PORT /healthz
//   xtc-http post  HOST:PORT /v1/estimate --body request.json
//   xtc-http post  HOST:PORT /v1/estimate --data '{"asm": "..."}'
//   xtc-http bench HOST:PORT /v1/estimate --clients 8 --requests 200
//             --data '{"asm": "..."}' [--seconds S] [--json]
//
// get/post print the response body to stdout. Exit code: 0 for a 2xx
// response, 1 for transport errors or non-2xx statuses (with the status
// line on stderr). --status additionally prints "HTTP <code>" to stdout
// first.
//
// bench opens --clients concurrent keep-alive connections (one thread
// each) and hammers the endpoint with --requests requests per connection
// (or for --seconds wall seconds), then reports latency percentiles *per
// connection* — p50/p95/p99 computed over each connection's own samples,
// so a shard serving one connection slowly shows up instead of drowning
// in the aggregate mean — plus the aggregate throughput. --json emits the
// same numbers as a JSON object. Any non-2xx response fails the run.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "net/http_client.h"
#include "tools/tool_common.h"
#include "util/strings.h"

namespace {

using Clock = std::chrono::steady_clock;

/// Nearest-rank percentile over an already-sorted sample vector.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

struct ClientStats {
  std::vector<double> latencies_ms;  // sorted after the run
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;  // non-2xx statuses (transport errors throw)
  std::string error;           // first transport error, if any

  double mean_ms() const {
    if (latencies_ms.empty()) return 0.0;
    double sum = 0.0;
    for (double v : latencies_ms) sum += v;
    return sum / static_cast<double>(latencies_ms.size());
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace exten;
  return tools::tool_main("xtc-http", [&] {
    const tools::Args args(argc, argv);
    args.require_known({"body", "data", "status", "timeout-ms", "clients",
                        "requests", "seconds", "json", "version"});
    if (tools::handle_version(args, "xtc-http")) return tools::kExitOk;
    if (args.positional().size() != 3) {
      std::cerr << "usage: xtc-http get|post|bench HOST:PORT /path "
                   "[--body FILE | --data JSON] [--status] "
                   "[--timeout-ms N] [--clients N] [--requests N] "
                   "[--seconds S] [--json]\n";
      return tools::kExitUsage;
    }
    const std::string& verb = args.positional()[0];
    const std::string& endpoint = args.positional()[1];
    const std::string& target = args.positional()[2];
    EXTEN_CHECK(verb == "get" || verb == "post" || verb == "bench",
                "bad verb '", verb, "' (get|post|bench)");

    const std::size_t colon = endpoint.rfind(':');
    EXTEN_CHECK(colon != std::string::npos && colon + 1 < endpoint.size(),
                "endpoint must be HOST:PORT, got '", endpoint, "'");
    const std::string host = endpoint.substr(0, colon);
    const std::uint16_t port = static_cast<std::uint16_t>(
        tools::parse_count("endpoint PORT", endpoint.substr(colon + 1), 1,
                           65'535));

    int timeout_ms = 30'000;
    if (auto t = args.value("timeout-ms")) {
      timeout_ms =
          static_cast<int>(tools::parse_count("timeout-ms", *t, 1, 3'600'000));
    }

    std::string body;
    if (auto path = args.value("body")) {
      body = tools::read_file(*path);
    } else if (auto data = args.value("data")) {
      body = *data;
    }

    if (verb != "bench") {
      net::HttpClient client(host, port, timeout_ms);
      const net::ResponseParser::Response response =
          verb == "get" ? client.get(target) : client.post(target, body);

      if (args.has("status")) {
        std::cout << "HTTP " << response.status << "\n";
      }
      std::cout << response.body;
      if (!response.body.empty() && response.body.back() != '\n') {
        std::cout << "\n";
      }
      if (response.status < 200 || response.status >= 300) {
        std::cerr << "xtc-http: server answered " << response.status << " "
                  << response.reason << "\n";
        return tools::kExitError;
      }
      return tools::kExitOk;
    }

    // ---- bench ----
    const unsigned clients = static_cast<unsigned>(tools::parse_count(
        "clients", args.value("clients").value_or("4"), 1, 1024));
    const std::uint64_t requests_per_client = tools::parse_count(
        "requests", args.value("requests").value_or("100"), 1, 100'000'000);
    double seconds_budget = 0.0;  // 0 = run by request count
    if (auto s = args.value("seconds")) {
      seconds_budget = static_cast<double>(
          tools::parse_count("seconds", *s, 1, 86'400));
    }
    const bool is_post = !body.empty();

    std::vector<ClientStats> stats(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    const auto bench_start = Clock::now();
    for (unsigned c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ClientStats& mine = stats[c];
        try {
          net::HttpClient client(host, port, timeout_ms);
          for (std::uint64_t i = 0; i < requests_per_client ||
                                    seconds_budget > 0.0;
               ++i) {
            const auto start = Clock::now();
            const net::ResponseParser::Response response =
                is_post ? client.post(target, body) : client.get(target);
            const double ms =
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          start)
                    .count();
            ++mine.requests;
            mine.latencies_ms.push_back(ms);
            if (response.status < 200 || response.status >= 300) {
              ++mine.failures;
            }
            if (seconds_budget > 0.0 &&
                std::chrono::duration<double>(Clock::now() - bench_start)
                        .count() >= seconds_budget) {
              break;
            }
          }
        } catch (const std::exception& e) {
          mine.error = e.what();
        }
        std::sort(mine.latencies_ms.begin(), mine.latencies_ms.end());
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_seconds =
        std::chrono::duration<double>(Clock::now() - bench_start).count();

    std::uint64_t total_requests = 0;
    std::uint64_t total_failures = 0;
    std::vector<double> all;
    for (const ClientStats& s : stats) {
      total_requests += s.requests;
      total_failures += s.failures;
      all.insert(all.end(), s.latencies_ms.begin(), s.latencies_ms.end());
    }
    std::sort(all.begin(), all.end());
    const double rps =
        wall_seconds > 0.0
            ? static_cast<double>(total_requests) / wall_seconds
            : 0.0;

    bool transport_error = false;
    if (args.has("json")) {
      std::ostringstream out;
      out << "{\"clients\":" << clients
          << ",\"requests\":" << total_requests
          << ",\"failures\":" << total_failures
          << ",\"wall_seconds\":" << format_fixed(wall_seconds, 6)
          << ",\"requests_per_second\":" << format_fixed(rps, 2)
          << ",\"aggregate_ms\":{\"p50\":"
          << format_fixed(percentile(all, 50), 3)
          << ",\"p95\":" << format_fixed(percentile(all, 95), 3)
          << ",\"p99\":" << format_fixed(percentile(all, 99), 3)
          << "},\"connections\":[";
      for (unsigned c = 0; c < clients; ++c) {
        const ClientStats& s = stats[c];
        if (c > 0) out << ",";
        out << "{\"client\":" << c << ",\"requests\":" << s.requests
            << ",\"failures\":" << s.failures
            << ",\"mean_ms\":" << format_fixed(s.mean_ms(), 3)
            << ",\"p50_ms\":" << format_fixed(percentile(s.latencies_ms, 50), 3)
            << ",\"p95_ms\":" << format_fixed(percentile(s.latencies_ms, 95), 3)
            << ",\"p99_ms\":" << format_fixed(percentile(s.latencies_ms, 99), 3)
            << "}";
        if (!s.error.empty()) transport_error = true;
      }
      out << "]}";
      std::cout << out.str() << "\n";
    } else {
      for (unsigned c = 0; c < clients; ++c) {
        const ClientStats& s = stats[c];
        std::cout << "client " << c << ": requests=" << s.requests
                  << " failures=" << s.failures
                  << " mean=" << format_fixed(s.mean_ms(), 3)
                  << "ms p50=" << format_fixed(percentile(s.latencies_ms, 50), 3)
                  << "ms p95=" << format_fixed(percentile(s.latencies_ms, 95), 3)
                  << "ms p99=" << format_fixed(percentile(s.latencies_ms, 99), 3)
                  << "ms";
        if (!s.error.empty()) {
          std::cout << " error=\"" << s.error << "\"";
          transport_error = true;
        }
        std::cout << "\n";
      }
      std::cout << "total: " << total_requests << " requests ("
                << total_failures << " failed) in "
                << format_fixed(wall_seconds, 3) << "s = "
                << format_fixed(rps, 1) << " req/s, aggregate p50="
                << format_fixed(percentile(all, 50), 3) << "ms p99="
                << format_fixed(percentile(all, 99), 3) << "ms\n";
    }
    if (transport_error || total_failures > 0) {
      std::cerr << "xtc-http: bench saw " << total_failures
                << " non-2xx responses"
                << (transport_error ? " and transport errors" : "") << "\n";
      return tools::kExitError;
    }
    return tools::kExitOk;
  });
}
