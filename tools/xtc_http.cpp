// xtc-http: tiny HTTP client for driving xtc-serve from scripts (CI
// smoke tests, shell experiments) without needing curl in the image.
//
//   xtc-http get  HOST:PORT /healthz
//   xtc-http post HOST:PORT /v1/estimate --body request.json
//   xtc-http post HOST:PORT /v1/estimate --data '{"asm": "..."}'
//
// Prints the response body to stdout. Exit code: 0 for a 2xx response,
// 1 for transport errors or non-2xx statuses (with the status line on
// stderr). --status additionally prints "HTTP <code>" to stdout first.

#include "net/http_client.h"
#include "tools/tool_common.h"

int main(int argc, char** argv) {
  using namespace exten;
  return tools::tool_main("xtc-http", [&] {
    const tools::Args args(argc, argv);
    args.require_known({"body", "data", "status", "timeout-ms", "version"});
    if (tools::handle_version(args, "xtc-http")) return tools::kExitOk;
    if (args.positional().size() != 3) {
      std::cerr << "usage: xtc-http get|post HOST:PORT /path "
                   "[--body FILE | --data JSON] [--status] "
                   "[--timeout-ms N]\n";
      return tools::kExitUsage;
    }
    const std::string& verb = args.positional()[0];
    const std::string& endpoint = args.positional()[1];
    const std::string& target = args.positional()[2];
    EXTEN_CHECK(verb == "get" || verb == "post", "bad verb '", verb,
                "' (get|post)");

    const std::size_t colon = endpoint.rfind(':');
    EXTEN_CHECK(colon != std::string::npos && colon + 1 < endpoint.size(),
                "endpoint must be HOST:PORT, got '", endpoint, "'");
    const std::string host = endpoint.substr(0, colon);
    const std::uint16_t port =
        static_cast<std::uint16_t>(std::stoul(endpoint.substr(colon + 1)));

    int timeout_ms = 30'000;
    if (auto t = args.value("timeout-ms")) {
      timeout_ms = static_cast<int>(std::stoul(*t));
    }

    std::string body;
    if (auto path = args.value("body")) {
      body = tools::read_file(*path);
    } else if (auto data = args.value("data")) {
      body = *data;
    }

    net::HttpClient client(host, port, timeout_ms);
    const net::ResponseParser::Response response =
        verb == "get" ? client.get(target) : client.post(target, body);

    if (args.has("status")) {
      std::cout << "HTTP " << response.status << "\n";
    }
    std::cout << response.body;
    if (!response.body.empty() && response.body.back() != '\n') {
      std::cout << "\n";
    }
    if (response.status < 200 || response.status >= 300) {
      std::cerr << "xtc-http: server answered " << response.status << " "
                << response.reason << "\n";
      return tools::kExitError;
    }
    return tools::kExitOk;
  });
}
