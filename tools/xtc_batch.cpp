// xtc-batch: drive the concurrent batch-estimation service from the
// command line.
//
//   xtc-batch jobs.jsonl --model xtc32.macromodel
//             [--threads N] [--cache N] [--repeat N] [--json]
//             [--trace FILE] [--energy auto|rapl|synthetic|none]
//             [--energy-sysfs-root PATH]
//
// --energy (default auto) measures host energy around each pass via the
// powercap/RAPL backend (docs/energy.md); when a backend is live every
// pass prints an "energy {...}" JSON line with per-domain joules, wall
// seconds and average watts. Without a readable powercap tree the flag
// degrades to none and the line is omitted.
//
// --trace enables span collection (docs/observability.md) and writes a
// Chrome trace-event JSON file plus a per-stage summary after all passes;
// each job carries its own correlation id, so one job's queue wait, cache
// probe, simulation and TIE time line up in the viewer.
//
// The jobs file is JSON lines — one request object per line (blank lines
// and lines starting with '#' are skipped):
//
//   {"name": "base",  "asm": "rs_base.s"}
//   {"name": "gfmac", "asm": "rs_gfmac.s", "tie": "gfmac.tie"}
//
//   name  job label (defaults to the asm path)
//   asm   assembly source, relative to the jobs file's directory
//   tie   optional TIE-lite spec path ("-" or null = base processor only)
//
// Per-job results print as a table (or as JSON lines with --json),
// followed by a summary metrics block in JSON: job counts, cache hit
// rate, wall-clock seconds, and the realized speedup vs. running the
// same work on one thread. --repeat re-submits the identical batch,
// demonstrating the content-addressed cache (the second pass should
// report a 100% hit rate).

#include <iostream>
#include <map>

#include "energy/meter.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "service/batch_estimator.h"
#include "tools/tool_common.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace exten;

std::vector<service::BatchJob> load_jobs(const std::string& jobs_path) {
  const std::string dir = jobs_path.find('/') == std::string::npos
                              ? std::string(".")
                              : jobs_path.substr(0, jobs_path.rfind('/'));
  // Jobs naming the same spec share one compiled TieConfiguration, the
  // same sharing the cache key hashing exploits.
  std::map<std::string, std::shared_ptr<const tie::TieConfiguration>>
      tie_by_path;

  std::vector<service::BatchJob> jobs;
  int line_number = 0;
  // Keep the file contents alive: split_lines returns views into it.
  const std::string text = tools::read_file(jobs_path);
  for (std::string_view line : split_lines(text)) {
    ++line_number;
    line = trim(line);
    if (line.empty() || line[0] == '#') continue;
    JsonValue request;
    try {
      request = JsonValue::parse(line);
    } catch (const Error& e) {
      throw Error(jobs_path, ":", line_number, ": ", e.what());
    }
    EXTEN_CHECK(request.is_object(), jobs_path, ":", line_number,
                ": request must be a JSON object");
    const std::string asm_rel = request.string_or("asm", "");
    EXTEN_CHECK(!asm_rel.empty(), jobs_path, ":", line_number,
                ": missing \"asm\" member");
    const std::string tie_rel = request.string_or("tie", "-");

    std::shared_ptr<const tie::TieConfiguration> tie_config;
    if (tie_rel == "-") {
      tie_config = std::make_shared<const tie::TieConfiguration>();
    } else {
      auto [it, inserted] = tie_by_path.try_emplace(tie_rel);
      if (inserted) {
        it->second = std::make_shared<const tie::TieConfiguration>(
            tie::compile_tie_source(tools::read_file(dir + "/" + tie_rel)));
      }
      tie_config = it->second;
    }

    service::BatchJob job;
    job.name = request.string_or("name", asm_rel);
    job.program = model::make_test_program(
        job.name, tools::read_file(dir + "/" + asm_rel), tie_config);
    jobs.push_back(std::move(job));
  }
  EXTEN_CHECK(!jobs.empty(), jobs_path, ": no job requests");
  return jobs;
}

void print_results_table(const service::BatchResult& batch) {
  AsciiTable table(
      {"Job", "Status", "Energy (uJ)", "Cycles", "Cache", "Eval (s)"});
  for (const service::JobResult& r : batch.results) {
    if (r.ok) {
      table.add_row({r.name, "ok", format_fixed(r.estimate.energy_uj(), 2),
                     with_commas(r.estimate.stats.cycles),
                     r.cache_hit ? "hit" : "miss",
                     format_fixed(r.estimate.elapsed_seconds, 3)});
    } else {
      table.add_row({r.name, "error: " + r.error, "-", "-", "-", "-"});
    }
  }
  table.print(std::cout);
}

void print_results_json(const service::BatchResult& batch) {
  for (const service::JobResult& r : batch.results) {
    JsonWriter w;
    w.begin_object();
    w.field("name", std::string_view(r.name));
    w.field("ok", r.ok);
    if (r.ok) {
      w.field("energy_pj", r.estimate.energy_pj);
      w.field("cycles", static_cast<std::uint64_t>(r.estimate.stats.cycles));
      w.field("cache_hit", r.cache_hit);
      w.field("eval_seconds", r.estimate.elapsed_seconds);
    } else {
      w.field("error", std::string_view(r.error));
    }
    w.end_object();
    std::cout << w.str() << "\n";
  }
}

// Lifetime cache counters (across --repeat passes): the same families
// /metrics exposes as xtc_cache_* on the server.
void print_cache_summary(const service::CacheStats& s) {
  JsonWriter w;
  w.begin_object();
  w.field("hits", s.hits);
  w.field("misses", s.misses);
  w.field("insertions", s.insertions);
  w.field("evictions", s.evictions);
  w.field("entries", static_cast<std::uint64_t>(s.entries));
  w.field("capacity", static_cast<std::uint64_t>(s.capacity));
  w.field("approx_bytes", static_cast<std::uint64_t>(s.approx_bytes));
  w.field("hit_rate", s.hit_rate());
  w.end_object();
  std::cout << "cache " << w.str() << "\n";
}

void print_metrics(const service::BatchMetrics& m) {
  JsonWriter w;
  w.begin_object();
  w.field("jobs", static_cast<std::uint64_t>(m.jobs));
  w.field("succeeded", static_cast<std::uint64_t>(m.succeeded));
  w.field("failed", static_cast<std::uint64_t>(m.failed));
  w.field("threads", static_cast<int>(m.threads));
  w.field("cache_hits", m.cache_hits);
  w.field("cache_misses", m.cache_misses);
  w.field("cache_hit_rate", m.hit_rate());
  w.field("wall_seconds", m.wall_seconds);
  w.field("total_worker_seconds", m.total_worker_seconds);
  w.field("speedup_vs_serial", m.speedup_vs_serial());
  w.end_object();
  std::cout << "metrics " << w.str() << "\n";
}

// Per-pass measured host energy, next to the pass's "metrics" line.
void print_energy(const energy::EnergySection::Report& report) {
  JsonWriter w;
  w.begin_object();
  w.object_field("joules");
  for (const energy::DomainEnergy& d : report.joules) {
    w.field(d.name, d.joules);
  }
  w.end_object();
  w.field("total_joules", report.total_joules());
  w.field("wall_seconds", report.wall_seconds);
  w.field("watts", report.wall_seconds <= 0.0
                       ? 0.0
                       : report.total_joules() / report.wall_seconds);
  w.end_object();
  std::cout << "energy " << w.str() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exten;
  return tools::tool_main("xtc-batch", [&] {
    const tools::Args args(argc, argv);
    args.require_known({"model", "threads", "cache", "repeat", "json",
                        "trace", "energy", "energy-sysfs-root", "version"});
    if (tools::handle_version(args, "xtc-batch")) return tools::kExitOk;
    if (args.positional().size() != 1 || !args.has("model")) {
      std::cerr << "usage: xtc-batch jobs.jsonl --model FILE [--threads N] "
                   "[--cache N] [--repeat N] [--json] [--trace FILE]\n";
      return tools::kExitUsage;
    }

    const std::optional<std::string> trace_file = args.value("trace");
    if (trace_file.has_value()) {
      obs::Tracer::instance().set_enabled(true);
    }

    service::BatchOptions options;
    if (auto threads = args.value("threads")) {
      options.num_threads =
          static_cast<unsigned>(tools::parse_count("threads", *threads, 1));
    }
    if (auto cache = args.value("cache")) {
      options.cache_capacity = tools::parse_count("cache", *cache);
    }
    unsigned repeat = 1;
    if (auto r = args.value("repeat")) {
      repeat = static_cast<unsigned>(
          tools::parse_count("repeat", *r, 1, 1'000'000));
    }

    std::vector<service::BatchJob> jobs = load_jobs(args.positional()[0]);
    if (trace_file.has_value()) {
      for (service::BatchJob& job : jobs) {
        job.trace_id = obs::Tracer::instance().next_id();
      }
    }
    service::BatchEstimator estimator(
        model::EnergyMacroModel::deserialize(
            tools::read_file(args.value("model").value())),
        options);

    // On-demand sampling (interval 0): passes are bounded intervals, so
    // two reads per pass suffice and fixture runs stay deterministic.
    energy::EnergyMeter energy_meter(
        energy::detect_backend(args.value("energy").value_or("auto"),
                               args.value("energy-sysfs-root").value_or("")),
        /*sample_interval_ms=*/0);

    for (unsigned pass = 1; pass <= repeat; ++pass) {
      if (repeat > 1) std::cout << "--- pass " << pass << " ---\n";
      energy::EnergySection section(energy_meter);
      const service::BatchResult batch = estimator.estimate(jobs);
      const energy::EnergySection::Report energy_report = section.stop();
      if (args.has("json")) {
        print_results_json(batch);
      } else {
        print_results_table(batch);
      }
      print_metrics(batch.metrics);
      if (energy_report.live) print_energy(energy_report);
    }
    print_cache_summary(estimator.cache_stats());
    if (trace_file.has_value()) {
      obs::Tracer::instance().set_enabled(false);
      const std::vector<obs::Span> spans = obs::Tracer::instance().snapshot();
      tools::write_file(*trace_file, obs::chrome_trace_json(spans));
      std::cout << "wrote " << spans.size() << " spans to " << *trace_file
                << "\n"
                << obs::stage_summary_table(obs::aggregate_stages(spans));
    }
    return tools::kExitOk;
  });
}
