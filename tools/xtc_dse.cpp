// xtc-dse: population-scale design-space exploration over generated
// TIE-lite extension sets.
//
//   xtc-dse --model xtc32.macromodel
//           [--strategy random|beam|genetic] [--budget N] [--seed N]
//           [--objective energy|delay|edp] [--checkpoint DIR] [--resume]
//           [--remote HOST:PORT] [--population N] [--beam-width N]
//           [--frontier N] [--threads N] [--cache N] [--json] [--quiet]
//
// Each generation the chosen strategy proposes candidate genomes, every
// genome expands deterministically into a TIE spec plus a harness
// application, and the batch is scored locally (service::BatchEstimator)
// or remotely (POST /v1/rank on an xtc-serve instance, --remote). With
// --checkpoint the search is durable after every generation; --resume
// continues a killed run bit-reproducibly (docs/dse.md). The final
// frontier prints as a table (or JSON lines with --json), followed by a
// `stats` JSON block with throughput and the EvalCache dedup hit rate.

#include <iostream>

#include "dse/driver.h"
#include "tools/tool_common.h"
#include "util/table.h"

namespace {

using namespace exten;

void print_frontier_table(const dse::DseResult& result) {
  AsciiTable table({"Rank", "Candidate", "Score", "Energy (uJ)", "Cycles",
                    "EDP (uJ*Mcyc)"});
  int rank = 0;
  for (const dse::ScoredGenome& s : result.frontier) {
    table.add_row({std::to_string(++rank), s.name, format_fixed(s.score, 6),
                   format_fixed(s.energy_pj * 1e-6, 2), with_commas(s.cycles),
                   format_fixed(s.edp, 6)});
  }
  table.print(std::cout);
}

void print_frontier_json(const dse::DseResult& result) {
  for (const dse::ScoredGenome& s : result.frontier) {
    JsonWriter w;
    w.begin_object();
    dse::write_scored_genome_fields(w, s);
    w.end_object();
    std::cout << w.str() << "\n";
  }
}

void print_stats(const dse::DseResult& result) {
  JsonWriter w;
  w.begin_object();
  w.field("strategy", std::string_view(result.strategy));
  w.field("objective",
          std::string_view(dse::objective_name(result.objective)));
  w.field("generations", result.generation);
  w.field("evaluations", result.evaluations);
  w.field("infeasible", result.infeasible);
  w.field("cache_hits", result.stats.cache_hits);
  w.field("cache_misses", result.stats.cache_misses);
  w.field("cache_hit_rate", result.stats.hit_rate());
  w.field("wall_seconds", result.stats.wall_seconds);
  w.field("candidates_per_second", result.stats.candidates_per_second());
  w.end_object();
  std::cout << "stats " << w.str() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace exten;
  return tools::tool_main("xtc-dse", [&] {
    const tools::Args args(argc, argv);
    args.require_known({"model", "strategy", "budget", "seed", "objective",
                        "checkpoint", "resume", "remote", "population",
                        "beam-width", "frontier", "threads", "cache", "json",
                        "quiet", "version"});
    if (tools::handle_version(args, "xtc-dse")) return tools::kExitOk;
    if (!args.has("model") || !args.positional().empty()) {
      std::cerr
          << "usage: xtc-dse --model FILE [--strategy random|beam|genetic]\n"
             "               [--budget N] [--seed N] "
             "[--objective energy|delay|edp]\n"
             "               [--checkpoint DIR] [--resume] "
             "[--remote HOST:PORT]\n"
             "               [--population N] [--beam-width N] [--frontier N]"
             "\n"
             "               [--threads N] [--cache N] [--json] [--quiet]\n";
      return tools::kExitUsage;
    }

    dse::DseOptions options;
    if (auto v = args.value("strategy")) options.strategy = *v;
    if (auto v = args.value("budget")) {
      options.budget = tools::parse_count("budget", *v, 1);
    }
    if (auto v = args.value("seed")) {
      options.seed = tools::parse_count("seed", *v);
    }
    if (auto v = args.value("objective")) {
      options.objective = dse::parse_objective(*v);
    }
    if (auto v = args.value("checkpoint")) options.checkpoint_dir = *v;
    if (auto v = args.value("remote")) options.remote_host = *v;
    if (auto v = args.value("population")) {
      options.search.population = tools::parse_count("population", *v, 1);
    }
    if (auto v = args.value("beam-width")) {
      options.search.beam_width = tools::parse_count("beam-width", *v, 1);
    }
    if (auto v = args.value("frontier")) {
      options.frontier_size = tools::parse_count("frontier", *v, 1);
    }
    if (auto v = args.value("threads")) {
      options.batch.num_threads =
          static_cast<unsigned>(tools::parse_count("threads", *v, 1));
    }
    if (auto v = args.value("cache")) {
      options.batch.cache_capacity = tools::parse_count("cache", *v);
    }
    if (!args.has("quiet")) {
      options.on_generation = [](const dse::GenerationSummary& g) {
        std::cerr << "generation " << g.generation << ": " << g.proposed
                  << " proposed, " << g.evaluations << "/" << g.budget
                  << " evaluated";
        if (!g.best_name.empty()) {
          std::cerr << ", best " << g.best_name << " score "
                    << format_fixed(g.best_score, 6);
        }
        std::cerr << "\n";
      };
    }

    const model::EnergyMacroModel macro_model =
        model::EnergyMacroModel::deserialize(
            tools::read_file(args.value("model").value()));

    dse::DseResult result;
    if (args.has("resume")) {
      EXTEN_CHECK(!options.checkpoint_dir.empty(),
                  "--resume needs --checkpoint DIR");
      // A --budget given alongside --resume extends (or shortens) the
      // checkpointed budget; otherwise the checkpoint's budget stands.
      const std::uint64_t budget_override =
          args.value("budget") ? options.budget : 0;
      result = dse::resume_dse(macro_model, options, budget_override);
    } else {
      result = dse::run_dse(macro_model, options);
    }

    if (args.has("json")) {
      print_frontier_json(result);
    } else {
      print_frontier_table(result);
    }
    print_stats(result);
    return tools::kExitOk;
  });
}
