#pragma once

// Shared helpers for the xtc-* command-line tools: file IO, flag parsing,
// and loading a program (assembly source or serialized image) together
// with its optional TIE-lite extension.

#include <charconv>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "isa/assembler.h"
#include "isa/image_io.h"
#include "tie/compiler.h"
#include "util/error.h"
#include "util/strings.h"

namespace exten::tools {

/// Unified exit codes across every xtc-* tool (scriptable: a wrapper can
/// tell "bad invocation" from "the work itself failed").
inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;  ///< runtime failure (bad input, IO, ...)
inline constexpr int kExitUsage = 2;  ///< bad command line

#ifndef EXTEN_VERSION
#define EXTEN_VERSION "0.0.0-dev"
#endif

/// The "--version" line: "<tool> <semver>".
inline std::string version_line(std::string_view tool) {
  return std::string(tool) + " " + EXTEN_VERSION;
}

/// Reads a whole file; throws exten::Error when unreadable.
inline std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  EXTEN_CHECK(file.good(), "cannot read '", path, "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

/// Writes a whole file; throws exten::Error on failure.
inline void write_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary);
  EXTEN_CHECK(file.good(), "cannot write '", path, "'");
  file << content;
  EXTEN_CHECK(file.good(), "write to '", path, "' failed");
}

/// Minimal flag parser: positional arguments plus --flag / --flag VALUE.
/// A flag greedily consumes the next token as its value unless that token
/// is itself a flag (this is what lets --trace / --profile take optional
/// counts); positional arguments therefore must precede bare flags.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (starts_with(arg, "--")) {
        const std::string name = arg.substr(2);
        if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
          flags_[name] = argv[++i];
        } else {
          flags_[name] = "";
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const { return flags_.count(name) != 0; }

  std::optional<std::string> value(const std::string& name) const {
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty()) return std::nullopt;
    return it->second;
  }

  /// Throws when a flag outside `known` was given — catches typos like
  /// --thread for --threads, which would otherwise be silently ignored.
  void require_known(std::initializer_list<std::string_view> known) const {
    for (const auto& [name, unused] : flags_) {
      bool ok = false;
      for (std::string_view k : known) ok = ok || k == name;
      EXTEN_CHECK(ok, "unknown flag '--", name, "'");
    }
  }

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

/// Parses a flag's value as an unsigned integer with range validation;
/// throws exten::Error naming the flag on garbage, a sign, trailing junk,
/// or an out-of-range value — so `--clients banana` (or `--clients -4`)
/// fails loudly instead of silently becoming 0 via std::stoul.
inline std::uint64_t parse_count(
    std::string_view flag, std::string_view text, std::uint64_t min_value = 0,
    std::uint64_t max_value = std::numeric_limits<std::uint64_t>::max()) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  EXTEN_CHECK(!text.empty() && ec == std::errc() && ptr == end, "--", flag,
              " expects an unsigned integer, got '", text, "'");
  EXTEN_CHECK(value >= min_value && value <= max_value, "--", flag,
              " must be in [", min_value, ", ", max_value, "], got ", value);
  return value;
}

/// A loaded program: image + extension (never null).
struct LoadedProgram {
  isa::ProgramImage image;
  std::shared_ptr<const tie::TieConfiguration> tie;
};

/// Loads `path` as assembly (default) or a serialized image (".img" or
/// --image), applying the optional --tie specification.
inline LoadedProgram load_program(const std::string& path, const Args& args) {
  LoadedProgram loaded;
  auto config = std::make_shared<tie::TieConfiguration>();
  if (auto tie_path = args.value("tie")) {
    *config = tie::compile_tie_source(read_file(*tie_path));
  }
  loaded.tie = config;

  const std::string content = read_file(path);
  const bool is_image = args.has("image") || ends_with(path, ".img");
  if (is_image) {
    loaded.image = isa::parse_image(content);
  } else {
    isa::AssemblerOptions options;
    options.custom_mnemonics = config->assembler_mnemonics();
    loaded.image = isa::assemble(content, options);
  }
  return loaded;
}

/// Handles the uniform --version flag: prints the version line and
/// returns true (caller exits kExitOk). Call before any usage check so
/// `tool --version` works without the otherwise-required arguments.
inline bool handle_version(const Args& args, std::string_view tool) {
  if (!args.has("version")) return false;
  std::cout << version_line(tool) << "\n";
  return true;
}

/// Standard tool main wrapper: catches exten::Error and prints it.
template <typename Body>
int tool_main(const char* tool, Body&& body) {
  try {
    return body();
  } catch (const Error& e) {
    std::cerr << tool << ": error: " << e.what() << "\n";
    return kExitError;
  }
}

}  // namespace exten::tools
