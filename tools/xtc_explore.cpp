// xtc-explore: rank candidate instruction-set extensions for an
// application using only the macro-model fast path.
//
//   xtc-explore manifest.txt --model xtc32.macromodel
//               [--objective energy|delay|edp]
//
// The manifest lists one candidate per line:
//
//   # name         assembly            tie spec (optional: '-' = base only)
//   base           rs_base.s           -
//   gfmul          rs_gfmul.s          gfmul.tie
//
// Paths are relative to the manifest's directory.

#include "explore/explore.h"
#include "tools/tool_common.h"

int main(int argc, char** argv) {
  using namespace exten;
  return tools::tool_main("xtc-explore", [&] {
    const tools::Args args(argc, argv);
    if (tools::handle_version(args, "xtc-explore")) return tools::kExitOk;
    if (args.positional().size() != 1 || !args.has("model")) {
      std::cerr << "usage: xtc-explore manifest.txt --model FILE "
                   "[--objective energy|delay|edp]\n";
      return tools::kExitUsage;
    }
    const std::string manifest_path = args.positional()[0];
    const std::string dir =
        manifest_path.find('/') == std::string::npos
            ? std::string(".")
            : manifest_path.substr(0, manifest_path.rfind('/'));

    explore::Objective objective = explore::Objective::kEdp;
    if (auto o = args.value("objective")) {
      if (*o == "energy") objective = explore::Objective::kEnergy;
      else if (*o == "delay") objective = explore::Objective::kDelay;
      else if (*o == "edp") objective = explore::Objective::kEdp;
      else throw Error("unknown --objective '", *o, "'");
    }

    const model::EnergyMacroModel macro_model =
        model::EnergyMacroModel::deserialize(
            tools::read_file(args.value("model").value()));

    std::vector<explore::Candidate> candidates;
    int line_number = 0;
    const std::string manifest = tools::read_file(manifest_path);
    for (std::string_view line : split_lines(manifest)) {
      ++line_number;
      line = trim(line);
      if (line.empty() || line[0] == '#') continue;
      std::vector<std::string_view> fields;
      for (std::string_view f : split(line, ' ')) {
        if (!trim(f).empty()) fields.push_back(trim(f));
      }
      EXTEN_CHECK(fields.size() == 2 || fields.size() == 3, "manifest line ",
                  line_number, ": expected NAME ASM [TIE]");
      const std::string name(fields[0]);
      const std::string asm_path = dir + "/" + std::string(fields[1]);
      std::string tie_source;
      if (fields.size() == 3 && fields[2] != "-") {
        tie_source = tools::read_file(dir + "/" + std::string(fields[2]));
      }
      candidates.push_back(
          {name, model::make_test_program(name, tools::read_file(asm_path),
                                          tie_source)});
    }
    EXTEN_CHECK(!candidates.empty(), "manifest lists no candidates");

    const explore::ExploreResult result =
        explore::rank_candidates(candidates, macro_model, objective);
    explore::to_table(result).print(std::cout);
    std::cout << "\nbest by the chosen objective: " << result.best().name
              << "\n";
    return tools::kExitOk;
  });
}
