// xtc-asm: assemble XTC-32 source into a program image.
//
//   xtc-asm program.s [--tie spec.tie] [--out program.img] [--list]
//
// --tie   registers a TIE-lite extension's mnemonics
// --out   image output path (default: input with .img appended)
// --list  print a listing (addresses + disassembly) to stdout

#include "isa/disassembler.h"
#include "tools/tool_common.h"

int main(int argc, char** argv) {
  using namespace exten;
  return tools::tool_main("xtc-asm", [&] {
    const tools::Args args(argc, argv);
    if (tools::handle_version(args, "xtc-asm")) return tools::kExitOk;
    if (args.positional().size() != 1) {
      std::cerr << "usage: xtc-asm program.s [--tie spec.tie] "
                   "[--out program.img] [--list]\n";
      return tools::kExitUsage;
    }
    const std::string input = args.positional()[0];

    auto config = std::make_shared<tie::TieConfiguration>();
    if (auto tie_path = args.value("tie")) {
      *config = tie::compile_tie_source(tools::read_file(*tie_path));
    }
    isa::AssemblerOptions options;
    options.custom_mnemonics = config->assembler_mnemonics();
    const isa::ProgramImage image =
        isa::assemble(tools::read_file(input), options);

    const std::string output =
        args.value("out").value_or(input + ".img");
    tools::write_file(output, isa::image_to_string(image));
    std::cout << "wrote " << output << " (" << image.total_bytes()
              << " bytes in " << image.segments().size()
              << " segment(s), entry 0x" << std::hex << image.entry_point()
              << std::dec << ")\n";

    if (args.has("list")) {
      isa::DisassemblerOptions disasm;
      disasm.custom_mnemonics = config->disassembler_mnemonics();
      for (const isa::Segment& segment : image.segments()) {
        for (std::uint32_t offset = 0; offset + 4 <= segment.bytes.size();
             offset += 4) {
          const std::uint32_t addr = segment.base + offset;
          const auto word = image.read_word(addr);
          if (!word) continue;
          std::printf("0x%08x  %08x  ", addr, *word);
          try {
            std::printf("%s\n", isa::disassemble_word(*word, disasm).c_str());
          } catch (const Error&) {
            std::printf(".word 0x%08x\n", *word);  // data, not code
          }
        }
      }
    }
    return tools::kExitOk;
  });
}
