// xtc-energy: estimate a program's energy.
//
//   xtc-energy program.s|program.img [--tie spec.tie]
//              [--model xtc32.macromodel] [--reference] [--breakdown]
//
// With --model, uses the fitted macro-model (fast path: ISS +
// resource-usage analysis + dot product) — produce the model file with
// examples/characterize_processor or xtc-characterize.
// With --reference (or no model), runs the RTL-level structural estimator
// (slow path, ground truth); --breakdown prints per-block energies.

#include "model/estimate.h"
#include "tools/tool_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace exten;
  return tools::tool_main("xtc-energy", [&] {
    const tools::Args args(argc, argv);
    if (tools::handle_version(args, "xtc-energy")) return tools::kExitOk;
    if (args.positional().size() != 1) {
      std::cerr << "usage: xtc-energy program.s|program.img [--tie spec.tie] "
                   "[--model FILE] [--reference] [--breakdown]\n";
      return tools::kExitUsage;
    }
    tools::LoadedProgram loaded =
        tools::load_program(args.positional()[0], args);
    model::TestProgram program;
    program.name = args.positional()[0];
    program.image = std::move(loaded.image);
    program.tie = loaded.tie;

    const bool want_reference = args.has("reference") || !args.has("model");

    if (args.has("model")) {
      const auto path = args.value("model");
      EXTEN_CHECK(path.has_value(), "--model needs a file path");
      const model::EnergyMacroModel macro_model =
          model::EnergyMacroModel::deserialize(tools::read_file(*path));
      const model::EnergyEstimate estimate =
          model::estimate_energy(macro_model, program);
      std::cout << "macro-model estimate: "
                << format_fixed(estimate.energy_uj(), 3) << " uJ  ("
                << with_commas(estimate.stats.cycles) << " cycles, "
                << format_fixed(estimate.elapsed_seconds * 1e3, 2)
                << " ms to estimate)\n";
    }

    if (want_reference) {
      const model::ReferenceResult reference =
          model::reference_energy(program);
      std::cout << "RTL-level reference:  "
                << format_fixed(reference.energy_uj(), 3) << " uJ  ("
                << with_commas(reference.stats.cycles) << " cycles, "
                << format_fixed(reference.elapsed_seconds * 1e3, 2)
                << " ms to simulate, "
                << format_fixed(
                       reference.energy_pj * 1e-12 /
                           reference.stats.seconds_at(187.0) * 1e3,
                       1)
                << " mW @ 187 MHz)\n";
      if (args.has("breakdown")) {
        AsciiTable table({"Block", "Energy (uJ)", "Share (%)"});
        for (const auto& [name, pj] : reference.breakdown) {
          if (pj <= 0.0) continue;
          table.add_row({name, format_fixed(pj * 1e-6, 3),
                         format_fixed(100.0 * pj / reference.energy_pj, 1)});
        }
        std::cout << "\n";
        table.print(std::cout);
      }
    }
    return tools::kExitOk;
  });
}
