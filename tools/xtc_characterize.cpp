// xtc-characterize: run the characterization flow and save the fitted
// macro-model (the CLI twin of examples/characterize_processor, with
// fitting options exposed).
//
//   xtc-characterize [--out xtc32.macromodel] [--method qr|pinv]
//                    [--nonnegative] [--ridge LAMBDA] [--seed N]
//                    [--table]

#include "model/characterize.h"
#include "tools/tool_common.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace exten;
  return tools::tool_main("xtc-characterize", [&] {
    const tools::Args args(argc, argv);
    if (tools::handle_version(args, "xtc-characterize")) {
      return tools::kExitOk;
    }

    model::CharacterizeOptions options;
    if (auto method = args.value("method")) {
      if (*method == "qr") {
        options.method = model::FitMethod::kQr;
      } else if (*method == "pinv") {
        options.method = model::FitMethod::kPseudoInverse;
      } else {
        throw Error("unknown --method '", *method, "' (qr|pinv)");
      }
    }
    options.nonnegative = args.has("nonnegative");
    if (auto ridge = args.value("ridge")) {
      options.ridge_lambda = std::stod(*ridge);
    }

    std::uint64_t seed = 7;
    if (auto v = args.value("seed")) {
      std::int64_t n = 0;
      EXTEN_CHECK(parse_int(*v, &n) && n >= 0, "bad --seed '", *v, "'");
      seed = static_cast<std::uint64_t>(n);
    }

    std::cout << "characterizing (this runs the full suite through the "
                 "RTL-level estimator)...\n";
    const auto suite = workloads::characterization_suite(seed);
    const model::CharacterizationResult result =
        model::characterize(suite, options);

    std::cout << "  " << suite.size() << " programs, R^2 = "
              << format_fixed(result.r_squared, 6) << ", RMS fit error "
              << format_fixed(result.rms_error_percent, 2) << " %, max "
              << format_fixed(result.max_abs_error_percent, 2) << " %\n";
    if (args.has("table")) {
      result.model.coefficient_table().print(std::cout);
    }

    const std::string output =
        args.value("out").value_or("xtc32.macromodel");
    tools::write_file(output, result.model.serialize());
    std::cout << "model written to " << output << "\n";
    return tools::kExitOk;
  });
}
