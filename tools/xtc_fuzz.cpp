// xtc-fuzz: deterministic differential fuzzer for the exten toolchain.
//
// Usage:
//   xtc-fuzz --list
//   xtc-fuzz --target engine_diff --seed 7 --iters 20000
//   xtc-fuzz --target all --iters 1000 --corpus tests/corpus --out out/
//   xtc-fuzz --repro repro-engine_diff-seed7-iter123.txt
//
// Every case is a pure function of (target, seed, iteration): two runs of
// the same invocation behave bit-identically, and a failure found in CI
// replays locally from either the printed (seed, iteration) pair or the
// written repro artifact. On failure the payload is minimized before the
// artifact is written and the exit code is 1.

#include <iostream>
#include <string>
#include <vector>

#include "fuzz/fuzz.h"
#include "tool_common.h"

namespace {

using namespace exten;
using namespace exten::tools;

int usage() {
  std::cerr
      << "usage: xtc-fuzz [--target NAME|all] [--seed N] [--iters N]\n"
      << "                [--corpus DIR] [--out DIR] [--repro FILE]\n"
      << "                [--list] [--version]\n"
      << "  --target NAME   fuzz one target (--list shows them); default all\n"
      << "  --seed N        base seed (default 1)\n"
      << "  --iters N       iterations per target (default 1000)\n"
      << "  --corpus DIR    corpus root; target NAME reads DIR/<subdir>\n"
      << "  --out DIR       directory for repro artifacts (default .)\n"
      << "  --repro FILE    replay a repro artifact instead of fuzzing\n";
  return kExitUsage;
}

/// Corpus subdirectory per target (matches tests/corpus/ layout); empty
/// for purely structured targets.
std::string corpus_subdir(std::string_view target) {
  if (target == "asm") return "asm";
  if (target == "image") return "image";
  if (target == "json") return "json";
  if (target == "http") return "http";
  if (target == "tie_diff") return "tie";
  return {};
}

std::uint64_t parse_u64_flag(const Args& args, const std::string& name,
                             std::uint64_t fallback) {
  const auto value = args.value(name);
  if (!value) return fallback;
  std::int64_t parsed = 0;
  EXTEN_CHECK(parse_int(*value, &parsed) && parsed >= 0, "--", name,
              " needs a non-negative integer, got '", *value, "'");
  return static_cast<std::uint64_t>(parsed);
}

int replay(const std::string& path) {
  const fuzz::Failure failure = fuzz::parse_repro_text(read_file(path));
  const fuzz::Target* target = fuzz::find_target(failure.target);
  EXTEN_CHECK(target != nullptr, "repro names unknown target '",
              failure.target, "'");
  const fuzz::Outcome outcome = target->run(failure.payload);
  if (outcome.ok) {
    std::cout << "repro " << path << ": target " << failure.target
              << " PASSES (fixed or environment-dependent)\n";
    return kExitOk;
  }
  std::cout << "repro " << path << ": target " << failure.target
            << " still FAILS\n"
            << outcome.message << "\n";
  return kExitError;
}

int fuzz_one(const fuzz::Target& target, const Args& args,
             std::uint64_t seed, std::uint64_t iters) {
  fuzz::Corpus corpus;
  fuzz::RunOptions options;
  options.seed = seed;
  options.iterations = iters;
  if (const auto dir = args.value("corpus")) {
    const std::string subdir = corpus_subdir(target.name());
    if (!subdir.empty()) {
      corpus = fuzz::Corpus::load_directory(*dir + "/" + subdir);
      options.corpus = &corpus;
    }
  }

  const std::optional<fuzz::Failure> failure =
      fuzz::run_target(target, options);
  if (!failure) {
    std::cout << "target " << target.name() << ": " << iters
              << " iterations from seed " << seed << ", all passed\n";
    return kExitOk;
  }

  const std::string out_dir = args.value("out").value_or(".");
  const std::string path = out_dir + "/repro-" + failure->target + "-seed" +
                           std::to_string(failure->seed) + "-iter" +
                           std::to_string(failure->iteration) + ".txt";
  write_file(path, fuzz::write_repro_text(*failure));
  std::cout << "target " << target.name() << ": FAILURE at seed "
            << failure->seed << " iteration " << failure->iteration << "\n"
            << failure->message << "\n"
            << "minimized payload: " << failure->payload.size()
            << " bytes -> " << path << "\n";
  return kExitError;
}

}  // namespace

int main(int argc, char** argv) {
  return tool_main("xtc-fuzz", [&]() -> int {
    const Args args(argc, argv);
    args.require_known({"target", "seed", "iters", "corpus", "out", "repro",
                        "list", "version", "help"});
    if (handle_version(args, "xtc-fuzz")) return kExitOk;
    if (args.has("help")) return usage();

    if (args.has("list")) {
      for (const fuzz::Target* target : fuzz::builtin_targets()) {
        std::cout << target->name() << "\n    " << target->description()
                  << "\n";
      }
      return kExitOk;
    }
    if (const auto repro_path = args.value("repro")) {
      return replay(*repro_path);
    }

    const std::uint64_t seed = parse_u64_flag(args, "seed", 1);
    const std::uint64_t iters = parse_u64_flag(args, "iters", 1000);
    const std::string name = args.value("target").value_or("all");

    std::vector<const fuzz::Target*> selected;
    if (name == "all") {
      selected = fuzz::builtin_targets();
    } else {
      const fuzz::Target* target = fuzz::find_target(name);
      EXTEN_CHECK(target != nullptr, "unknown target '", name,
                  "' (xtc-fuzz --list shows the available targets)");
      selected.push_back(target);
    }

    int exit_code = kExitOk;
    for (const fuzz::Target* target : selected) {
      const int rc = fuzz_one(*target, args, seed, iters);
      if (rc != kExitOk) exit_code = rc;
    }
    return exit_code;
  });
}
